"""Transport-free request handlers: parsed JSON body → response dict.

Each endpoint has a ``parse_*`` step that turns a JSON body into a
:class:`ParsedRequest` — a single-flight key plus a ``run`` thunk — and
raises :class:`~repro.service.protocol.BadRequestError` on structurally
malformed input.  The server coalesces by key and executes ``run`` on a
worker thread; errors raised by ``run`` are library errors and travel
with their class names (see ``protocol.py``).

Keeping the handlers free of HTTP makes the remote-vs-local parity tests
trivial to reason about: ``run()`` calls exactly the same library entry
points (:func:`~repro.homomorphism.engine.count`,
:func:`~repro.homomorphism.engine.count_ucq`, :func:`repro.planner.plan`,
:func:`~repro.decision.search.find_counterexample`) a direct caller
would, with the shared warm :class:`~repro.homomorphism.cache.CountCache`
as the only addition — and caching never changes a count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import SearchBudgetExceeded
from repro.homomorphism.cache import CountCache, canonical_component
from repro.homomorphism.engine import count, count_ucq
from repro.io import (
    delta_from_dict,
    ground_facts_from_text,
    query_from_dict,
    query_to_dict,
    structure_from_dict,
    structure_from_facts,
    structure_to_dict,
)
from repro.obs import metrics as obs_metrics
from repro.queries.cq import ConjunctiveQuery
from repro.queries.parser import parse_query
from repro.queries.ucq import UnionOfConjunctiveQueries
from repro.relational.structure import Delta, Structure
from repro.service.protocol import PROTOCOL_VERSION, BadRequestError, request_key

__all__ = ["ParsedRequest", "parse_request", "ENDPOINTS"]

_ENGINES = ("auto", "backtracking", "treewidth", "acyclic", "compiled")


@dataclass(frozen=True)
class ParsedRequest:
    """One admitted unit of work: identity for coalescing, thunk to run."""

    endpoint: str
    key: tuple
    run: Callable[[], dict]


def _require_dict(body) -> dict:
    if not isinstance(body, dict):
        raise BadRequestError(
            f"request body must be a JSON object, got {type(body).__name__}"
        )
    return body


def _get_engine(body: dict) -> str:
    engine = body.get("engine", "auto")
    if not isinstance(engine, str):
        raise BadRequestError(f"'engine' must be a string, got {engine!r}")
    # Unknown engine *names* are a library concern (EvaluationError, so
    # remote and local callers see the same class); only the type is
    # checked here.
    return engine


def _parse_query_field(body: dict, field: str = "query") -> ConjunctiveQuery:
    """A query from ``field`` (io dict) or ``field + '_text'`` (syntax)."""
    if field in body:
        payload = body[field]
        if not isinstance(payload, dict):
            raise BadRequestError(
                f"'{field}' must be a JSON object (repro.io query payload)"
            )
        return query_from_dict(payload)
    text_field = f"{field}_text"
    if text_field in body:
        text = body[text_field]
        if not isinstance(text, str):
            raise BadRequestError(f"'{text_field}' must be a string")
        return parse_query(text)
    raise BadRequestError(f"request needs '{field}' or '{text_field}'")


def _parse_structure_field(body: dict, required: bool = True) -> Structure | None:
    """A structure from ``"structure"`` (io dict) or ``"facts"`` (shorthand).

    The ``facts`` shorthand mirrors ``bagcq evaluate --facts``, including
    its convenience of self-interpreting any query constants — callers
    who need exact parity with a :class:`Structure` they hold locally
    should send the io dict, which round-trips bit for bit.
    """
    if "structure" in body:
        payload = body["structure"]
        if not isinstance(payload, dict):
            raise BadRequestError(
                "'structure' must be a JSON object (repro.io structure payload)"
            )
        return structure_from_dict(payload)
    if "facts" in body:
        text = body["facts"]
        if not isinstance(text, str):
            raise BadRequestError("'facts' must be a string")
        return structure_from_facts(text)
    if required:
        raise BadRequestError("request needs 'structure' or 'facts'")
    return None


def _interpret_missing_constants(
    query: ConjunctiveQuery, structure: Structure, from_facts: bool
) -> Structure:
    if not from_facts:
        return structure
    for constant in query.constants:
        if not structure.interprets(constant.name):
            structure = structure.with_constant(constant.name, constant.name)
    return structure


def _resolve_database(body: dict, databases):
    """The named database a request points at via ``"db"``, or ``None``.

    Resolution happens at *parse* time: the returned handle's structure
    is the version snapshot this request is keyed — and evaluated —
    against, so a racing ``/update`` never changes what an admitted
    request computes.
    """
    name = body.get("db")
    if name is None:
        return None
    if databases is None:
        raise BadRequestError(
            "this server hosts no named databases; send an inline structure"
        )
    return databases.get(name)


def _parse_delta_field(body: dict) -> Delta:
    """A delta from ``"delta"`` (io dict) or ``"insert"``/``"delete"`` text.

    The text shorthand mirrors ``bagcq update --insert/--delete``: ground
    atoms like ``"E(a, b); E(b, c)"``, semicolon- or space-separated.
    """
    if "delta" in body:
        payload = body["delta"]
        if not isinstance(payload, dict):
            raise BadRequestError(
                "'delta' must be a JSON object (repro.io delta payload)"
            )
        return delta_from_dict(payload)
    if "insert" not in body and "delete" not in body:
        raise BadRequestError("request needs 'delta', 'insert', or 'delete'")
    inserts: list = []
    deletes: list = []
    if "insert" in body:
        text = body["insert"]
        if not isinstance(text, str):
            raise BadRequestError("'insert' must be a string of ground atoms")
        inserts = ground_facts_from_text(text)
    if "delete" in body:
        text = body["delete"]
        if not isinstance(text, str):
            raise BadRequestError("'delete' must be a string of ground atoms")
        deletes = ground_facts_from_text(text)
    return Delta(inserts=tuple(inserts), deletes=tuple(deletes))


def _parse_int(body: dict, field: str, default, minimum=None):
    value = body.get(field, default)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise BadRequestError(f"'{field}' must be an integer, got {value!r}")
    if minimum is not None and value < minimum:
        raise BadRequestError(f"'{field}' must be >= {minimum}, got {value}")
    return value


def parse_evaluate(
    body: dict, cache: CountCache | None, databases=None
) -> ParsedRequest:
    """``POST /evaluate`` — ``count`` (kind "cq") or ``count_ucq`` ("ucq").

    With ``"db": name`` the request evaluates a server-resident database
    (see ``parse_db``) instead of shipping one inline; the version
    snapshot taken at parse time rides in the key, so requests racing an
    ``/update`` coalesce only within one version.
    """
    body = _require_dict(body)
    engine = _get_engine(body)
    kind = body.get("kind", "cq")
    use_cache = body.get("cache", True)
    if not isinstance(use_cache, bool):
        raise BadRequestError(f"'cache' must be a boolean, got {use_cache!r}")
    effective_cache = cache if use_cache else None
    from_facts = "structure" not in body and "facts" in body

    database = _resolve_database(body, databases)
    if database is not None and ("structure" in body or "facts" in body):
        raise BadRequestError(
            "give either 'db' or an inline 'structure'/'facts', not both"
        )

    def _resolve_structure(query: ConjunctiveQuery | None):
        """(structure, db-identity extras, db response fields)."""
        if database is None:
            structure = _parse_structure_field(body)
            if query is not None:
                structure = _interpret_missing_constants(
                    query, structure, from_facts
                )
            return structure, (), {}
        structure = database.structure  # parse-time version snapshot
        extra = (database.name, database.version)
        fields = {
            "db": database.name,
            "version": database.version,
            "fingerprint": structure.fingerprint(),
        }
        return structure, extra, fields

    def _counted(thunk) -> int:
        """Run ``thunk``, attributing cache traffic to delta reuse.

        Only db-backed requests tally here: their cache hits are exactly
        the Lemma-1 factors carried across versions by ``/update``.
        """
        if database is None or effective_cache is None:
            return thunk()
        hits_before = effective_cache.hits
        misses_before = effective_cache.misses
        value = thunk()
        reused = effective_cache.hits - hits_before
        recounted = effective_cache.misses - misses_before
        if reused:
            obs_metrics.add("delta.reused_factors", reused)
        if recounted:
            obs_metrics.add("delta.affected_components", recounted)
        return value

    if kind == "cq":
        query = _parse_query_field(body)
        structure, db_extra, db_fields = _resolve_structure(query)

        def run() -> dict:
            value = _counted(
                lambda: count(
                    query, structure, engine=engine, cache=effective_cache
                )
            )
            return {
                "protocol_version": PROTOCOL_VERSION,
                "kind": "cq",
                "engine": engine,
                "count": value,
                **db_fields,
            }

        return ParsedRequest(
            endpoint="evaluate",
            key=request_key(
                "evaluate",
                engine=engine,
                query=query,
                structure=structure,
                extra=(use_cache, *db_extra),
            ),
            run=run,
        )

    if kind == "ucq":
        raw = body.get("disjuncts")
        if not isinstance(raw, list) or not raw:
            raise BadRequestError(
                "'disjuncts' must be a non-empty list for kind 'ucq'"
            )
        disjuncts = []
        for entry in raw:
            if not isinstance(entry, dict):
                raise BadRequestError("each disjunct must be a JSON object")
            disjunct = _parse_query_field(entry)
            multiplicity = _parse_int(entry, "multiplicity", 1, minimum=0)
            disjuncts.append((disjunct, multiplicity))
        structure, db_extra, db_fields = _resolve_structure(None)
        ucq = UnionOfConjunctiveQueries(disjuncts)

        def run_ucq() -> dict:
            value = _counted(
                lambda: count_ucq(
                    ucq, structure, engine=engine, cache=effective_cache
                )
            )
            return {
                "protocol_version": PROTOCOL_VERSION,
                "kind": "ucq",
                "engine": engine,
                "count": value,
                **db_fields,
            }

        return ParsedRequest(
            endpoint="evaluate",
            key=request_key(
                "evaluate",
                engine=engine,
                disjuncts=ucq.disjuncts,
                structure=structure,
                extra=(use_cache, *db_extra),
            ),
            run=run_ucq,
        )

    raise BadRequestError(f"unknown evaluate kind {kind!r}; use 'cq' or 'ucq'")


def parse_db(
    body: dict, cache: CountCache | None, databases=None
) -> ParsedRequest:
    """``POST /db`` — load (or replace) a named server-resident database.

    Loading is idempotent at a given content: identical concurrent loads
    coalesce (same name, same fingerprint vector, same engine), and
    rebinding a name to new content starts it back at version 0.
    """
    body = _require_dict(body)
    if databases is None:
        raise BadRequestError("this server hosts no named databases")
    name = body.get("name")
    if not isinstance(name, str) or not name:
        raise BadRequestError(
            f"'name' must be a non-empty string, got {name!r}"
        )
    engine = _get_engine(body)
    structure = _parse_structure_field(body)

    def run() -> dict:
        database = databases.load(name, structure, engine=engine)
        return {
            "protocol_version": PROTOCOL_VERSION,
            "db": database.name,
            **database.snapshot(),
        }

    return ParsedRequest(
        endpoint="db",
        key=request_key("db", engine=engine, structure=structure, extra=(name,)),
        run=run,
    )


def parse_update(
    body: dict, cache: CountCache | None, databases=None
) -> ParsedRequest:
    """``POST /update`` — apply a delta to a named database.

    Updates are *never* coalesced: two identical deltas must each bump
    the version, so every request key carries a fresh unique token.
    Responses surface the :class:`~repro.homomorphism.delta.DeltaReport`
    (migrated vs invalidated cache entries, refreshed compiled
    artifacts, new version and fingerprint).
    """
    body = _require_dict(body)
    if databases is None:
        raise BadRequestError("this server hosts no named databases")
    name = body.get("db")
    if not isinstance(name, str) or not name:
        raise BadRequestError(f"'db' must be a non-empty string, got {name!r}")
    databases.get(name)  # unknown names fail fast, before queueing
    delta = _parse_delta_field(body)

    def run() -> dict:
        report = databases.update(name, delta)
        return {
            "protocol_version": PROTOCOL_VERSION,
            "db": name,
            "version": report.version,
            "fingerprint": report.fingerprint,
            "touched_relations": list(report.touched_relations),
            "domain_changed": report.domain_changed,
            "invalidated": report.invalidated,
            "migrated": report.migrated,
            "refreshed_artifacts": report.refreshed_artifacts,
        }

    return ParsedRequest(
        endpoint="update",
        key=request_key("update", extra=(name, object())),
        run=run,
    )


def parse_explain(
    body: dict, cache: CountCache | None = None, databases=None
) -> ParsedRequest:
    """``POST /explain`` — the machine-readable plan ``auto`` would run."""
    body = _require_dict(body)
    query = _parse_query_field(body)
    structure = _parse_structure_field(body, required=False)
    if structure is None:
        structure = query.canonical_structure()
        source = "canonical"
    else:
        structure = _interpret_missing_constants(
            query, structure, "structure" not in body
        )
        source = "inline"

    def run() -> dict:
        from repro.planner import PlanCache, plan

        # A fresh PlanCache keeps the hit/miss totals meaningful for this
        # query alone — the same choice `bagcq explain` makes.
        chosen = plan(query, structure, cache=PlanCache())
        return {
            "protocol_version": PROTOCOL_VERSION,
            "query": query_to_dict(query),
            "planned_against": source,
            "domain_size": len(structure.domain),
            "plan": chosen.to_dict(),
        }

    return ParsedRequest(
        endpoint="explain",
        key=request_key("explain", query=query, structure=structure),
        run=run,
    )


def parse_decide(
    body: dict, cache: CountCache | None, databases=None
) -> ParsedRequest:
    """``POST /decide`` — a bounded random-stream counterexample search."""
    body = _require_dict(body)
    engine = _get_engine(body)
    phi_s = _parse_query_field(body, "phi_s")
    phi_b = _parse_query_field(body, "phi_b")
    multiplier = _parse_int(body, "multiplier", 1, minimum=1)
    additive = _parse_int(body, "additive", 0)
    domain_size = _parse_int(body, "domain_size", 3, minimum=1)
    candidates = _parse_int(body, "count", 100, minimum=0)
    seed = _parse_int(body, "seed", 0)
    max_candidates = _parse_int(body, "max_candidates", None, minimum=0)
    density = body.get("density", 0.3)
    if isinstance(density, bool) or not isinstance(density, (int, float)):
        raise BadRequestError(f"'density' must be a number, got {density!r}")

    def run() -> dict:
        from repro.decision.search import find_counterexample, random_structures

        schema = phi_s.schema.union(phi_b.schema)
        stream = random_structures(
            schema,
            domain_size=domain_size,
            density=float(density),
            count=candidates,
            seed=seed,
        )
        try:
            outcome = find_counterexample(
                phi_s,
                phi_b,
                stream,
                multiplier=multiplier,
                additive=additive,
                max_candidates=max_candidates,
                engine=engine,
                cache=cache,
            )
        except SearchBudgetExceeded as error:
            return {
                "protocol_version": PROTOCOL_VERSION,
                "verdict": "budget_exceeded",
                "detail": str(error),
            }
        return {
            "protocol_version": PROTOCOL_VERSION,
            "verdict": "counterexample" if outcome.found else "exhausted",
            "found": outcome.found,
            "checked": outcome.checked,
            "lhs": outcome.lhs,
            "rhs": outcome.rhs,
            "counterexample": (
                structure_to_dict(outcome.counterexample)
                if outcome.counterexample is not None
                else None
            ),
        }

    return ParsedRequest(
        endpoint="decide",
        key=request_key(
            "decide",
            engine=engine,
            query=phi_s,
            extra=(
                # The full parameterization: any difference may change the
                # verdict, so only exact repeats coalesce.  phi_b rides in
                # `extra` canonicalized, mirroring phi_s in `query`.
                canonical_component(phi_b),
                multiplier,
                additive,
                domain_size,
                float(density),
                candidates,
                seed,
                max_candidates,
            ),
        ),
        run=run,
    )


def _parse_disjuncts_field(body: dict, field: str) -> list[ConjunctiveQuery]:
    raw = body.get(field)
    if not isinstance(raw, list) or not raw:
        raise BadRequestError(f"'{field}' must be a non-empty list")
    disjuncts = []
    for entry in raw:
        if not isinstance(entry, dict):
            raise BadRequestError(f"each '{field}' entry must be a JSON object")
        disjuncts.append(_parse_query_field(entry))
    return disjuncts


def parse_contain(
    body: dict, cache: CountCache | None, databases=None
) -> ParsedRequest:
    """``POST /contain`` — set-semantics containment (CQ or UCQ pairs).

    Kind ``"cq"`` (default) takes ``phi_s`` / ``phi_b`` query fields;
    kind ``"ucq"`` takes ``disjuncts_s`` / ``disjuncts_b`` lists of
    query entries.  ``witness`` (default true) controls whether positive
    verdicts carry the witness homomorphism; the absence certificate on
    negative verdicts is always included.  Library objections —
    inequalities (``QueryError``), unknown engines (``EvaluationError``),
    uninterpreted constants (``ConstantError``) — travel with their
    class names, exactly as a direct caller would see them.
    """
    body = _require_dict(body)
    engine = _get_engine(body)
    kind = body.get("kind", "cq")
    want_witness = body.get("witness", True)
    if not isinstance(want_witness, bool):
        raise BadRequestError(f"'witness' must be a boolean, got {want_witness!r}")
    use_cache = body.get("cache", True)
    if not isinstance(use_cache, bool):
        raise BadRequestError(f"'cache' must be a boolean, got {use_cache!r}")

    from repro.containment_set import (
        cq_containment,
        default_containment_cache,
        ucq_containment,
    )

    verdict_cache = default_containment_cache() if use_cache else None
    count_cache = cache if use_cache else None

    if kind == "cq":
        phi_s = _parse_query_field(body, "phi_s")
        phi_b = _parse_query_field(body, "phi_b")

        def run() -> dict:
            verdict = cq_containment(
                phi_s,
                phi_b,
                engine=engine,
                cache=verdict_cache,
                count_cache=count_cache,
                want_witness=want_witness,
            )
            return {
                "protocol_version": PROTOCOL_VERSION,
                "kind": "cq",
                **verdict.to_dict(),
            }

        return ParsedRequest(
            endpoint="contain",
            key=request_key(
                "contain",
                engine=engine,
                query=phi_s,
                extra=(canonical_component(phi_b), want_witness, use_cache),
            ),
            run=run,
        )

    if kind == "ucq":
        left = _parse_disjuncts_field(body, "disjuncts_s")
        right = _parse_disjuncts_field(body, "disjuncts_b")

        def run_ucq() -> dict:
            verdict = ucq_containment(
                left,
                right,
                engine=engine,
                cache=verdict_cache,
                count_cache=count_cache,
                want_witness=want_witness,
            )
            return {
                "protocol_version": PROTOCOL_VERSION,
                "kind": "ucq",
                **verdict.to_dict(),
            }

        return ParsedRequest(
            endpoint="contain",
            key=request_key(
                "contain",
                engine=engine,
                disjuncts=tuple((query, 1) for query in left),
                extra=(
                    tuple(canonical_component(query) for query in right),
                    want_witness,
                    use_cache,
                ),
            ),
            run=run_ucq,
        )

    raise BadRequestError(f"unknown contain kind {kind!r}; use 'cq' or 'ucq'")


#: endpoint name → parser; the server's routing table for POST bodies.
#: Parsers take ``(body, count_cache, databases=None)`` — the registry of
#: server-resident databases is ``None`` for transport-free direct use.
ENDPOINTS: dict[str, Callable[..., ParsedRequest]] = {
    "evaluate": parse_evaluate,
    "explain": parse_explain,
    "decide": parse_decide,
    "contain": parse_contain,
    "db": parse_db,
    "update": parse_update,
}
