"""Transport-free request handlers: parsed JSON body → response dict.

Each endpoint has a ``parse_*`` step that turns a JSON body into a
:class:`ParsedRequest` — a single-flight key plus a ``run`` thunk — and
raises :class:`~repro.service.protocol.BadRequestError` on structurally
malformed input.  The server coalesces by key and executes ``run`` on a
worker thread; errors raised by ``run`` are library errors and travel
with their class names (see ``protocol.py``).

Keeping the handlers free of HTTP makes the remote-vs-local parity tests
trivial to reason about: ``run()`` calls exactly the same library entry
points (:func:`~repro.homomorphism.engine.count`,
:func:`~repro.homomorphism.engine.count_ucq`, :func:`repro.planner.plan`,
:func:`~repro.decision.search.find_counterexample`) a direct caller
would, with the shared warm :class:`~repro.homomorphism.cache.CountCache`
as the only addition — and caching never changes a count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import SearchBudgetExceeded
from repro.homomorphism.cache import CountCache, canonical_component
from repro.homomorphism.engine import count, count_ucq
from repro.io import (
    query_from_dict,
    query_to_dict,
    structure_from_dict,
    structure_from_facts,
    structure_to_dict,
)
from repro.queries.cq import ConjunctiveQuery
from repro.queries.parser import parse_query
from repro.queries.ucq import UnionOfConjunctiveQueries
from repro.relational.structure import Structure
from repro.service.protocol import PROTOCOL_VERSION, BadRequestError, request_key

__all__ = ["ParsedRequest", "parse_request", "ENDPOINTS"]

_ENGINES = ("auto", "backtracking", "treewidth", "acyclic", "compiled")


@dataclass(frozen=True)
class ParsedRequest:
    """One admitted unit of work: identity for coalescing, thunk to run."""

    endpoint: str
    key: tuple
    run: Callable[[], dict]


def _require_dict(body) -> dict:
    if not isinstance(body, dict):
        raise BadRequestError(
            f"request body must be a JSON object, got {type(body).__name__}"
        )
    return body


def _get_engine(body: dict) -> str:
    engine = body.get("engine", "auto")
    if not isinstance(engine, str):
        raise BadRequestError(f"'engine' must be a string, got {engine!r}")
    # Unknown engine *names* are a library concern (EvaluationError, so
    # remote and local callers see the same class); only the type is
    # checked here.
    return engine


def _parse_query_field(body: dict, field: str = "query") -> ConjunctiveQuery:
    """A query from ``field`` (io dict) or ``field + '_text'`` (syntax)."""
    if field in body:
        payload = body[field]
        if not isinstance(payload, dict):
            raise BadRequestError(
                f"'{field}' must be a JSON object (repro.io query payload)"
            )
        return query_from_dict(payload)
    text_field = f"{field}_text"
    if text_field in body:
        text = body[text_field]
        if not isinstance(text, str):
            raise BadRequestError(f"'{text_field}' must be a string")
        return parse_query(text)
    raise BadRequestError(f"request needs '{field}' or '{text_field}'")


def _parse_structure_field(body: dict, required: bool = True) -> Structure | None:
    """A structure from ``"structure"`` (io dict) or ``"facts"`` (shorthand).

    The ``facts`` shorthand mirrors ``bagcq evaluate --facts``, including
    its convenience of self-interpreting any query constants — callers
    who need exact parity with a :class:`Structure` they hold locally
    should send the io dict, which round-trips bit for bit.
    """
    if "structure" in body:
        payload = body["structure"]
        if not isinstance(payload, dict):
            raise BadRequestError(
                "'structure' must be a JSON object (repro.io structure payload)"
            )
        return structure_from_dict(payload)
    if "facts" in body:
        text = body["facts"]
        if not isinstance(text, str):
            raise BadRequestError("'facts' must be a string")
        return structure_from_facts(text)
    if required:
        raise BadRequestError("request needs 'structure' or 'facts'")
    return None


def _interpret_missing_constants(
    query: ConjunctiveQuery, structure: Structure, from_facts: bool
) -> Structure:
    if not from_facts:
        return structure
    for constant in query.constants:
        if not structure.interprets(constant.name):
            structure = structure.with_constant(constant.name, constant.name)
    return structure


def _parse_int(body: dict, field: str, default, minimum=None):
    value = body.get(field, default)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise BadRequestError(f"'{field}' must be an integer, got {value!r}")
    if minimum is not None and value < minimum:
        raise BadRequestError(f"'{field}' must be >= {minimum}, got {value}")
    return value


def parse_evaluate(body: dict, cache: CountCache | None) -> ParsedRequest:
    """``POST /evaluate`` — ``count`` (kind "cq") or ``count_ucq`` ("ucq")."""
    body = _require_dict(body)
    engine = _get_engine(body)
    kind = body.get("kind", "cq")
    use_cache = body.get("cache", True)
    if not isinstance(use_cache, bool):
        raise BadRequestError(f"'cache' must be a boolean, got {use_cache!r}")
    effective_cache = cache if use_cache else None
    from_facts = "structure" not in body and "facts" in body

    if kind == "cq":
        query = _parse_query_field(body)
        structure = _parse_structure_field(body)
        structure = _interpret_missing_constants(query, structure, from_facts)

        def run() -> dict:
            value = count(query, structure, engine=engine, cache=effective_cache)
            return {
                "protocol_version": PROTOCOL_VERSION,
                "kind": "cq",
                "engine": engine,
                "count": value,
            }

        return ParsedRequest(
            endpoint="evaluate",
            key=request_key(
                "evaluate",
                engine=engine,
                query=query,
                structure=structure,
                extra=(use_cache,),
            ),
            run=run,
        )

    if kind == "ucq":
        raw = body.get("disjuncts")
        if not isinstance(raw, list) or not raw:
            raise BadRequestError(
                "'disjuncts' must be a non-empty list for kind 'ucq'"
            )
        disjuncts = []
        for entry in raw:
            if not isinstance(entry, dict):
                raise BadRequestError("each disjunct must be a JSON object")
            disjunct = _parse_query_field(entry)
            multiplicity = _parse_int(entry, "multiplicity", 1, minimum=0)
            disjuncts.append((disjunct, multiplicity))
        structure = _parse_structure_field(body)
        ucq = UnionOfConjunctiveQueries(disjuncts)

        def run_ucq() -> dict:
            value = count_ucq(ucq, structure, engine=engine, cache=effective_cache)
            return {
                "protocol_version": PROTOCOL_VERSION,
                "kind": "ucq",
                "engine": engine,
                "count": value,
            }

        return ParsedRequest(
            endpoint="evaluate",
            key=request_key(
                "evaluate",
                engine=engine,
                disjuncts=ucq.disjuncts,
                structure=structure,
                extra=(use_cache,),
            ),
            run=run_ucq,
        )

    raise BadRequestError(f"unknown evaluate kind {kind!r}; use 'cq' or 'ucq'")


def parse_explain(body: dict, cache: CountCache | None = None) -> ParsedRequest:
    """``POST /explain`` — the machine-readable plan ``auto`` would run."""
    body = _require_dict(body)
    query = _parse_query_field(body)
    structure = _parse_structure_field(body, required=False)
    if structure is None:
        structure = query.canonical_structure()
        source = "canonical"
    else:
        structure = _interpret_missing_constants(
            query, structure, "structure" not in body
        )
        source = "inline"

    def run() -> dict:
        from repro.planner import PlanCache, plan

        # A fresh PlanCache keeps the hit/miss totals meaningful for this
        # query alone — the same choice `bagcq explain` makes.
        chosen = plan(query, structure, cache=PlanCache())
        return {
            "protocol_version": PROTOCOL_VERSION,
            "query": query_to_dict(query),
            "planned_against": source,
            "domain_size": len(structure.domain),
            "plan": chosen.to_dict(),
        }

    return ParsedRequest(
        endpoint="explain",
        key=request_key("explain", query=query, structure=structure),
        run=run,
    )


def parse_decide(body: dict, cache: CountCache | None) -> ParsedRequest:
    """``POST /decide`` — a bounded random-stream counterexample search."""
    body = _require_dict(body)
    engine = _get_engine(body)
    phi_s = _parse_query_field(body, "phi_s")
    phi_b = _parse_query_field(body, "phi_b")
    multiplier = _parse_int(body, "multiplier", 1, minimum=1)
    additive = _parse_int(body, "additive", 0)
    domain_size = _parse_int(body, "domain_size", 3, minimum=1)
    candidates = _parse_int(body, "count", 100, minimum=0)
    seed = _parse_int(body, "seed", 0)
    max_candidates = _parse_int(body, "max_candidates", None, minimum=0)
    density = body.get("density", 0.3)
    if isinstance(density, bool) or not isinstance(density, (int, float)):
        raise BadRequestError(f"'density' must be a number, got {density!r}")

    def run() -> dict:
        from repro.decision.search import find_counterexample, random_structures

        schema = phi_s.schema.union(phi_b.schema)
        stream = random_structures(
            schema,
            domain_size=domain_size,
            density=float(density),
            count=candidates,
            seed=seed,
        )
        try:
            outcome = find_counterexample(
                phi_s,
                phi_b,
                stream,
                multiplier=multiplier,
                additive=additive,
                max_candidates=max_candidates,
                engine=engine,
                cache=cache,
            )
        except SearchBudgetExceeded as error:
            return {
                "protocol_version": PROTOCOL_VERSION,
                "verdict": "budget_exceeded",
                "detail": str(error),
            }
        return {
            "protocol_version": PROTOCOL_VERSION,
            "verdict": "counterexample" if outcome.found else "exhausted",
            "found": outcome.found,
            "checked": outcome.checked,
            "lhs": outcome.lhs,
            "rhs": outcome.rhs,
            "counterexample": (
                structure_to_dict(outcome.counterexample)
                if outcome.counterexample is not None
                else None
            ),
        }

    return ParsedRequest(
        endpoint="decide",
        key=request_key(
            "decide",
            engine=engine,
            query=phi_s,
            extra=(
                # The full parameterization: any difference may change the
                # verdict, so only exact repeats coalesce.  phi_b rides in
                # `extra` canonicalized, mirroring phi_s in `query`.
                canonical_component(phi_b),
                multiplier,
                additive,
                domain_size,
                float(density),
                candidates,
                seed,
                max_candidates,
            ),
        ),
        run=run,
    )


def _parse_disjuncts_field(body: dict, field: str) -> list[ConjunctiveQuery]:
    raw = body.get(field)
    if not isinstance(raw, list) or not raw:
        raise BadRequestError(f"'{field}' must be a non-empty list")
    disjuncts = []
    for entry in raw:
        if not isinstance(entry, dict):
            raise BadRequestError(f"each '{field}' entry must be a JSON object")
        disjuncts.append(_parse_query_field(entry))
    return disjuncts


def parse_contain(body: dict, cache: CountCache | None) -> ParsedRequest:
    """``POST /contain`` — set-semantics containment (CQ or UCQ pairs).

    Kind ``"cq"`` (default) takes ``phi_s`` / ``phi_b`` query fields;
    kind ``"ucq"`` takes ``disjuncts_s`` / ``disjuncts_b`` lists of
    query entries.  ``witness`` (default true) controls whether positive
    verdicts carry the witness homomorphism; the absence certificate on
    negative verdicts is always included.  Library objections —
    inequalities (``QueryError``), unknown engines (``EvaluationError``),
    uninterpreted constants (``ConstantError``) — travel with their
    class names, exactly as a direct caller would see them.
    """
    body = _require_dict(body)
    engine = _get_engine(body)
    kind = body.get("kind", "cq")
    want_witness = body.get("witness", True)
    if not isinstance(want_witness, bool):
        raise BadRequestError(f"'witness' must be a boolean, got {want_witness!r}")
    use_cache = body.get("cache", True)
    if not isinstance(use_cache, bool):
        raise BadRequestError(f"'cache' must be a boolean, got {use_cache!r}")

    from repro.containment_set import (
        cq_containment,
        default_containment_cache,
        ucq_containment,
    )

    verdict_cache = default_containment_cache() if use_cache else None
    count_cache = cache if use_cache else None

    if kind == "cq":
        phi_s = _parse_query_field(body, "phi_s")
        phi_b = _parse_query_field(body, "phi_b")

        def run() -> dict:
            verdict = cq_containment(
                phi_s,
                phi_b,
                engine=engine,
                cache=verdict_cache,
                count_cache=count_cache,
                want_witness=want_witness,
            )
            return {
                "protocol_version": PROTOCOL_VERSION,
                "kind": "cq",
                **verdict.to_dict(),
            }

        return ParsedRequest(
            endpoint="contain",
            key=request_key(
                "contain",
                engine=engine,
                query=phi_s,
                extra=(canonical_component(phi_b), want_witness, use_cache),
            ),
            run=run,
        )

    if kind == "ucq":
        left = _parse_disjuncts_field(body, "disjuncts_s")
        right = _parse_disjuncts_field(body, "disjuncts_b")

        def run_ucq() -> dict:
            verdict = ucq_containment(
                left,
                right,
                engine=engine,
                cache=verdict_cache,
                count_cache=count_cache,
                want_witness=want_witness,
            )
            return {
                "protocol_version": PROTOCOL_VERSION,
                "kind": "ucq",
                **verdict.to_dict(),
            }

        return ParsedRequest(
            endpoint="contain",
            key=request_key(
                "contain",
                engine=engine,
                disjuncts=tuple((query, 1) for query in left),
                extra=(
                    tuple(canonical_component(query) for query in right),
                    want_witness,
                    use_cache,
                ),
            ),
            run=run_ucq,
        )

    raise BadRequestError(f"unknown contain kind {kind!r}; use 'cq' or 'ucq'")


#: endpoint name → parser; the server's routing table for POST bodies.
ENDPOINTS: dict[str, Callable[[dict, CountCache | None], ParsedRequest]] = {
    "evaluate": parse_evaluate,
    "explain": parse_explain,
    "decide": parse_decide,
    "contain": parse_contain,
}
