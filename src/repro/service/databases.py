"""Server-resident named databases with versioned, incremental updates.

A warm evaluation server is only half a production story while every
request ships its database inline.  :class:`DatabaseRegistry` lets a
client ``POST /db`` a structure once under a name, point ``/evaluate``
requests at it with ``"db": name``, and mutate it in place with
``POST /update`` deltas — each update re-homing the shared
:class:`~repro.homomorphism.cache.CountCache` and compiled artifacts
through a :class:`~repro.homomorphism.delta.DeltaEvaluator` instead of
flushing them.

Versioning is fingerprint-based end to end: the single-flight
:func:`~repro.service.protocol.request_key` embeds the structure's
fingerprint vector, so two evaluates racing an update coalesce only when
they really saw the same database version.
"""

from __future__ import annotations

import threading

from repro.homomorphism.cache import CountCache
from repro.homomorphism.delta import DeltaEvaluator, DeltaReport
from repro.obs import metrics as obs_metrics
from repro.relational.structure import Delta, Structure
from repro.service.protocol import BadRequestError

__all__ = ["DatabaseRegistry", "NamedDatabase", "DEFAULT_MAX_DATABASES"]

#: Bound on simultaneously-resident named databases per server.
DEFAULT_MAX_DATABASES = 64

_MAX_NAME_LENGTH = 64


class NamedDatabase:
    """One named, versioned database: a :class:`DeltaEvaluator` plus a name."""

    __slots__ = ("name", "evaluator")

    def __init__(self, name: str, evaluator: DeltaEvaluator) -> None:
        self.name = name
        self.evaluator = evaluator

    @property
    def structure(self) -> Structure:
        return self.evaluator.structure

    @property
    def version(self) -> int:
        return self.evaluator.version

    def snapshot(self) -> dict:
        """The ``/healthz`` surface of this database."""
        structure = self.evaluator.structure
        return {
            "version": self.evaluator.version,
            "engine": self.evaluator.engine,
            "fingerprint": structure.fingerprint(),
            "fact_count": structure.fact_count(),
            "domain_size": len(structure.domain),
        }

    def __repr__(self) -> str:
        return f"NamedDatabase({self.name!r}, version={self.version})"


def _check_name(name) -> str:
    if not isinstance(name, str) or not name:
        raise BadRequestError(
            f"database name must be a non-empty string, got {name!r}"
        )
    if len(name) > _MAX_NAME_LENGTH:
        raise BadRequestError(
            f"database name exceeds {_MAX_NAME_LENGTH} characters"
        )
    return name


class DatabaseRegistry:
    """Thread-safe name → :class:`NamedDatabase` map with a capacity bound.

    All databases share one :class:`CountCache` (the server's): cache
    keys embed relation fingerprints, so entries never leak between
    databases with different content — and *do* get shared when two
    databases hold identical relations, which is exactly when sharing is
    sound.
    """

    def __init__(
        self,
        count_cache: CountCache | None = None,
        max_databases: int = DEFAULT_MAX_DATABASES,
    ) -> None:
        if max_databases < 1:
            raise ValueError(
                f"registry needs max_databases >= 1, got {max_databases}"
            )
        self._count_cache = count_cache
        self._max = max_databases
        self._databases: dict[str, NamedDatabase] = {}
        self._lock = threading.Lock()

    def load(
        self, name: str, structure: Structure, engine: str = "auto"
    ) -> NamedDatabase:
        """Bind ``name`` to ``structure`` at version 0 (rebinding replaces)."""
        name = _check_name(name)
        evaluator = DeltaEvaluator(
            structure, engine=engine, cache=self._count_cache
        )
        database = NamedDatabase(name, evaluator)
        with self._lock:
            if name not in self._databases and len(self._databases) >= self._max:
                raise BadRequestError(
                    f"database limit reached ({self._max}); "
                    f"unload or reuse an existing name"
                )
            self._databases[name] = database
            resident = len(self._databases)
        obs_metrics.add("service.db_loads")
        registry = obs_metrics.active_registry()
        if registry is not None:
            registry.gauge("service.databases").set(resident)
        return database

    def get(self, name) -> NamedDatabase:
        name = _check_name(name)
        with self._lock:
            database = self._databases.get(name)
        if database is None:
            raise BadRequestError(f"unknown database {name!r}; POST /db first")
        return database

    def update(self, name: str, delta: Delta) -> DeltaReport:
        """Apply a delta to the named database (serialized per database)."""
        report = self.get(name).evaluator.apply(delta)
        obs_metrics.add("service.db_updates")
        return report

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._databases)

    def snapshot(self) -> dict:
        """Per-database health info, keyed by name."""
        with self._lock:
            databases = list(self._databases.values())
        return {database.name: database.snapshot() for database in databases}

    def __len__(self) -> int:
        return len(self._databases)
