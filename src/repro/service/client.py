"""``ServiceClient`` — a small, retrying HTTP client for the daemon.

Retry policy: connection-level failures (refused, reset, dropped) and
retryable protocol kinds (``overloaded``, ``shutting_down``) are retried
up to ``retries`` times with exponential backoff and full jitter; a
server ``Retry-After`` hint (header or envelope field) overrides the
computed backoff for that attempt.  Everything else — library errors,
bad requests, deadline exhaustion — is surfaced immediately as a typed
exception carrying the envelope's ``kind``, because retrying a
deterministic failure only wastes the server's admission budget.

Request identity: the client mints one ``trace_id`` per instance (its
session) and one ``request_id`` per logical request, and **reuses the
request id across retries** — so the server's ``logical_requests``
counter sees a retried request as one caller, and its traces link the
attempts.  Seeded clients (``seed=``) mint reproducible ids.

The client is deliberately blocking and dependency-free (``urllib``):
one instance per thread is the intended usage, and the jitter RNG is
injectable (``seed=``) so tests and benchmarks stay reproducible.
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
from http.client import HTTPException
from typing import Any

from repro.errors import BagCQError
from repro.io import delta_to_dict, query_to_dict, structure_to_dict
from repro.obs import metrics as obs_metrics
from repro.queries.cq import ConjunctiveQuery
from repro.relational.structure import Delta, Structure
from repro.service import protocol

__all__ = [
    "DeadlineExceeded",
    "RemoteError",
    "ServiceClient",
    "ServiceError",
    "ServiceProtocolError",
    "ServiceUnavailable",
]


class ServiceError(BagCQError):
    """Base class of everything the client raises about the service."""

    def __init__(
        self,
        message: str,
        kind: str = protocol.KIND_INTERNAL,
        status: int | None = None,
        retry_after: float | None = None,
    ) -> None:
        super().__init__(message)
        self.kind = kind
        self.status = status
        self.retry_after = retry_after


class ServiceUnavailable(ServiceError):
    """Shed (429), draining (503), or unreachable after all retries."""


class DeadlineExceeded(ServiceError):
    """The server gave up on the request at its deadline (504)."""


class RemoteError(ServiceError):
    """A library error on the server; ``kind`` is the exception class name.

    Parity contract: for the same input, ``kind`` equals
    ``type(error).__name__`` of the exception a local call would raise.
    """


class ServiceProtocolError(ServiceError):
    """The response was not something this protocol version understands."""


def _encode_query(query: Any, field: str, body: dict) -> None:
    if isinstance(query, ConjunctiveQuery):
        body[field] = query_to_dict(query)
    elif isinstance(query, dict):
        body[field] = query
    elif isinstance(query, str):
        body[f"{field}_text"] = query
    else:
        raise ServiceProtocolError(
            f"{field} must be a ConjunctiveQuery, io dict, or query text; "
            f"got {type(query).__name__}"
        )


def _encode_structure(structure: Any, body: dict) -> None:
    if isinstance(structure, Structure):
        body["structure"] = structure_to_dict(structure)
    elif isinstance(structure, dict):
        body["structure"] = structure
    elif isinstance(structure, str):
        body["facts"] = structure
    else:
        raise ServiceProtocolError(
            f"structure must be a Structure, io dict, or facts text; "
            f"got {type(structure).__name__}"
        )


class ServiceClient:
    """A blocking client for one ``bagcq serve`` base URL.

    >>> client = ServiceClient("http://127.0.0.1:8642")   # doctest: +SKIP
    >>> client.evaluate("E(x,y) & E(y,x)", "E(a,b) E(b,a)")  # doctest: +SKIP
    2
    """

    def __init__(
        self,
        base_url: str,
        retries: int = 4,
        backoff_s: float = 0.05,
        backoff_cap_s: float = 2.0,
        timeout_s: float = 120.0,
        seed: int | None = None,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.retries = retries
        self.backoff_s = backoff_s
        self.backoff_cap_s = backoff_cap_s
        self.timeout_s = timeout_s
        self._rng = random.Random(seed)
        self._id_rng = random.Random(seed) if seed is not None else None
        #: One trace groups everything this client instance sends.
        self.trace_id = protocol.mint_id(self._id_rng)
        #: Identity of the most recent logical request (for correlating
        #: a client-side failure with the server's /traces view).
        self.last_request_id: str | None = None

    # -- endpoints ---------------------------------------------------------

    def evaluate(
        self,
        query,
        structure=None,
        engine: str = "auto",
        deadline_ms: int | None = None,
        cache: bool = True,
        db: str | None = None,
    ) -> int:
        """Remote ``count(query, structure)``; returns the exact integer.

        Pass ``db="name"`` instead of a structure to evaluate a
        server-resident database loaded with :meth:`load_db`.
        """
        body: dict = {"kind": "cq", "engine": engine, "cache": cache}
        _encode_query(query, "query", body)
        self._encode_target(structure, db, body)
        if deadline_ms is not None:
            body["deadline_ms"] = deadline_ms
        return int(self._post("evaluate", body)["count"])

    def evaluate_ucq(
        self,
        disjuncts,
        structure=None,
        engine: str = "auto",
        deadline_ms: int | None = None,
        cache: bool = True,
        db: str | None = None,
    ) -> int:
        """Remote ``count_ucq``: ``disjuncts`` is ``[(query, multiplicity)]``."""
        encoded = []
        for disjunct, multiplicity in disjuncts:
            entry: dict = {"multiplicity": multiplicity}
            _encode_query(disjunct, "query", entry)
            encoded.append(entry)
        body: dict = {
            "kind": "ucq",
            "engine": engine,
            "cache": cache,
            "disjuncts": encoded,
        }
        self._encode_target(structure, db, body)
        if deadline_ms is not None:
            body["deadline_ms"] = deadline_ms
        return int(self._post("evaluate", body)["count"])

    @staticmethod
    def _encode_target(structure, db: str | None, body: dict) -> None:
        """Exactly one evaluation target: inline structure or named db."""
        if (structure is None) == (db is None):
            raise ServiceProtocolError(
                "give exactly one of structure= or db="
            )
        if db is not None:
            body["db"] = db
        else:
            _encode_structure(structure, body)

    def load_db(
        self,
        name: str,
        structure,
        engine: str = "auto",
        deadline_ms: int | None = None,
    ) -> dict:
        """``POST /db``: (re)bind a named server-resident database.

        Returns the server's snapshot: ``version`` (0 on a fresh bind),
        ``fingerprint``, ``fact_count``, ``domain_size``, ``engine``.
        """
        body: dict = {"name": name, "engine": engine}
        _encode_structure(structure, body)
        if deadline_ms is not None:
            body["deadline_ms"] = deadline_ms
        return self._post("db", body)

    def update(
        self,
        db: str,
        delta=None,
        insert: str | None = None,
        delete: str | None = None,
        deadline_ms: int | None = None,
    ) -> dict:
        """``POST /update``: apply a delta to a named database.

        ``delta`` may be a :class:`~repro.relational.structure.Delta` or
        an io delta dict; ``insert``/``delete`` take ground-atom text
        (``"E(a,b); E(b,c)"``) instead.  Returns the delta report: new
        ``version`` and ``fingerprint``, plus ``migrated`` /
        ``invalidated`` / ``refreshed_artifacts`` cache effects.

        Updates are not idempotent and the server never coalesces them;
        the retry policy only re-sends on *pre-admission* failures
        (shed/draining), but a connection lost after admission may leave
        the update applied without a response — check ``version`` via
        :meth:`healthz` when in doubt.
        """
        body: dict = {"db": db}
        if delta is not None:
            if isinstance(delta, Delta):
                body["delta"] = delta_to_dict(delta)
            elif isinstance(delta, dict):
                body["delta"] = delta
            else:
                raise ServiceProtocolError(
                    f"delta must be a Delta or io dict, "
                    f"got {type(delta).__name__}"
                )
        if insert is not None:
            body["insert"] = insert
        if delete is not None:
            body["delete"] = delete
        if deadline_ms is not None:
            body["deadline_ms"] = deadline_ms
        return self._post("update", body)

    def explain(self, query, structure=None, deadline_ms: int | None = None) -> dict:
        """The machine-readable plan dict (see ``Plan.to_dict``)."""
        body: dict = {}
        _encode_query(query, "query", body)
        if structure is not None:
            _encode_structure(structure, body)
        if deadline_ms is not None:
            body["deadline_ms"] = deadline_ms
        return self._post("explain", body)

    def decide(
        self,
        phi_s,
        phi_b,
        multiplier: int = 1,
        additive: int = 0,
        domain_size: int = 3,
        density: float = 0.3,
        count: int = 100,
        seed: int = 0,
        max_candidates: int | None = None,
        engine: str = "auto",
        deadline_ms: int | None = None,
    ) -> dict:
        """Remote counterexample search over a seeded random stream."""
        body: dict = {
            "multiplier": multiplier,
            "additive": additive,
            "domain_size": domain_size,
            "density": density,
            "count": count,
            "seed": seed,
            "engine": engine,
        }
        _encode_query(phi_s, "phi_s", body)
        _encode_query(phi_b, "phi_b", body)
        if max_candidates is not None:
            body["max_candidates"] = max_candidates
        if deadline_ms is not None:
            body["deadline_ms"] = deadline_ms
        return self._post("decide", body)

    def contain(
        self,
        phi_s,
        phi_b,
        engine: str = "auto",
        witness: bool = True,
        cache: bool = True,
        deadline_ms: int | None = None,
    ) -> dict:
        """Remote set-semantics containment (``/contain``).

        Each side may be a query (``ConjunctiveQuery`` / io dict / text)
        for CQ ⊆ CQ, or a list of queries (a union's disjuncts) for
        UCQ ⊆ UCQ.  Returns the full verdict dict: ``contained``, the
        ``witness`` homomorphism on positive verdicts, the absence
        ``certificate`` on negative ones (and per-disjunct ``coverage``
        for unions).
        """
        body: dict = {"engine": engine, "witness": witness, "cache": cache}
        if isinstance(phi_s, (list, tuple)) or isinstance(phi_b, (list, tuple)):
            body["kind"] = "ucq"
            for side, field in ((phi_s, "disjuncts_s"), (phi_b, "disjuncts_b")):
                disjuncts = side if isinstance(side, (list, tuple)) else [side]
                encoded = []
                for disjunct in disjuncts:
                    entry: dict = {}
                    _encode_query(disjunct, "query", entry)
                    encoded.append(entry)
                body[field] = encoded
        else:
            body["kind"] = "cq"
            _encode_query(phi_s, "phi_s", body)
            _encode_query(phi_b, "phi_b", body)
        if deadline_ms is not None:
            body["deadline_ms"] = deadline_ms
        return self._post("contain", body)

    def healthz(self) -> dict:
        return self._request("GET", "healthz", None)

    def metrics(self) -> dict:
        return self._request("GET", "metrics", None)

    def traces(self) -> dict:
        """The server's flight recorder (``GET /traces``)."""
        return self._request("GET", "traces", None)

    # -- transport ---------------------------------------------------------

    def _post(self, endpoint: str, body: dict) -> dict:
        return self._request("POST", endpoint, body)

    def _backoff(self, attempt: int, hint: float | None) -> float:
        if hint is not None and hint >= 0:
            return hint
        ceiling = min(self.backoff_cap_s, self.backoff_s * (2**attempt))
        return self._rng.uniform(0, ceiling)  # full jitter

    def _request(self, method: str, endpoint: str, body: dict | None) -> dict:
        url = f"{self.base_url}/{endpoint}"
        payload = None if body is None else json.dumps(body).encode("utf-8")
        # One request id per *logical* request: every retry below resends
        # the same id, so server-side counters and traces see one caller.
        request_id = protocol.mint_id(self._id_rng)
        if method == "POST":
            # GET introspection (healthz/metrics/traces) must not clobber
            # the handle callers use to find their last POST in /traces.
            self.last_request_id = request_id
        last_error: ServiceError | None = None
        for attempt in range(self.retries + 1):
            try:
                return self._once(method, url, payload, request_id, attempt)
            except ServiceUnavailable as error:
                last_error = error
                if attempt >= self.retries:
                    break
                obs_metrics.add("service.client.retries")
                time.sleep(self._backoff(attempt, error.retry_after))
        assert last_error is not None
        raise last_error

    def _once(
        self,
        method: str,
        url: str,
        payload: bytes | None,
        request_id: str,
        attempt: int,
    ) -> dict:
        request = urllib.request.Request(
            url,
            data=payload if method == "POST" else None,
            method=method,
            headers={
                "Content-Type": "application/json",
                protocol.TRACE_ID_HEADER: self.trace_id,
                protocol.REQUEST_ID_HEADER: request_id,
                protocol.ATTEMPT_HEADER: str(attempt),
            },
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout_s) as response:
                raw = response.read()
        except urllib.error.HTTPError as error:
            self._raise_for_response(error)
            raise AssertionError("unreachable")  # pragma: no cover
        except (urllib.error.URLError, HTTPException, ConnectionError, OSError) as error:
            raise ServiceUnavailable(
                f"cannot reach {url}: {error}", kind="unreachable"
            ) from error
        try:
            return json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            raise ServiceProtocolError(
                f"non-JSON 200 response from {url}: {error}"
            ) from error

    def _raise_for_response(self, error: urllib.error.HTTPError) -> None:
        try:
            body = json.loads(error.read().decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            body = None
        kind, message, retry_after = protocol.parse_error_envelope(body)
        header_hint = error.headers.get("Retry-After")
        if retry_after is None and header_hint is not None:
            try:
                retry_after = float(header_hint)
            except ValueError:
                retry_after = None
        if kind in protocol.RETRYABLE_KINDS:
            raise ServiceUnavailable(
                message, kind=kind, status=error.code, retry_after=retry_after
            ) from None
        if kind == protocol.KIND_DEADLINE:
            raise DeadlineExceeded(
                message, kind=kind, status=error.code, retry_after=retry_after
            ) from None
        if kind in (
            protocol.KIND_BAD_REQUEST,
            protocol.KIND_NOT_FOUND,
            protocol.KIND_METHOD,
            protocol.KIND_INTERNAL,
        ):
            raise ServiceProtocolError(
                message, kind=kind, status=error.code, retry_after=retry_after
            ) from None
        # Everything else is a library error travelling by class name.
        raise RemoteError(
            message, kind=kind, status=error.code, retry_after=retry_after
        ) from None
