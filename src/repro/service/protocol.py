"""The wire protocol: versioned error envelope and single-flight keys.

Client and server share this module, so there is exactly one definition
of what an error looks like on the wire and of when two requests are
"the same work".

**Error envelope.**  Every non-2xx response body is::

    {
      "protocol_version": 1,
      "error": {
        "kind": "overloaded" | "deadline_exceeded" | "bad_request"
              | "not_found" | "method_not_allowed" | "shutting_down"
              | "internal" | "<BagCQError subclass name>",
        "message": "human-readable detail",
        "retry_after": 0.05 | null          # seconds, when retrying helps
      }
    }

Library errors travel with ``kind`` set to the *exception class name*
(``"EvaluationError"``, ``"ParseError"``, …), so a remote failure is
classifiable exactly like a local one — the remote-vs-local parity tests
assert ``kind == type(local_error).__name__`` bit for bit.

**Single-flight keys.**  :func:`request_key` maps a parsed request to a
hashable identity built on :func:`repro.homomorphism.cache.canonical_component`
— the same α-equivalence discipline that keys the
:class:`~repro.homomorphism.cache.CountCache` — so two concurrent
requests coalesce precisely when their evaluations would have shared a
cache entry anyway (same canonical query, same structure, same engine).
"""

from __future__ import annotations

import random
import uuid
from typing import Any

from repro.errors import BagCQError
from repro.homomorphism.cache import canonical_component
from repro.queries.cq import ConjunctiveQuery
from repro.relational.structure import Structure

__all__ = [
    "ATTEMPT_HEADER",
    "BadRequestError",
    "PROTOCOL_VERSION",
    "REQUEST_ID_HEADER",
    "RETRYABLE_KINDS",
    "TRACE_ID_HEADER",
    "clean_id",
    "error_envelope",
    "error_from_exception",
    "is_error_envelope",
    "mint_id",
    "parse_error_envelope",
    "request_key",
    "stamp_ids",
    "status_for_kind",
]

PROTOCOL_VERSION = 1

# -- request identity headers ----------------------------------------------

#: One *trace* groups every request of a logical operation (a client
#: session, a load-generator scenario); one *request id* names a single
#: logical request — **reused across retries**, so server-side counters
#: and traces see a retried request as one caller, not several.
TRACE_ID_HEADER = "X-Trace-Id"
REQUEST_ID_HEADER = "X-Request-Id"
#: 0-based retry attempt of this send (debugging aid; the server relies
#: on request-id reuse, not on this header, to recognize retries).
ATTEMPT_HEADER = "X-Request-Attempt"

_ID_ALPHABET = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_."
)
_MAX_ID_LENGTH = 64


def mint_id(rng: random.Random | None = None) -> str:
    """A fresh 16-hex-char identifier; seedable for reproducible clients."""
    if rng is not None:
        return f"{rng.getrandbits(64):016x}"
    return uuid.uuid4().hex[:16]


def clean_id(value: Any) -> str | None:
    """``value`` as a usable id, or ``None`` when absent or malformed.

    Tolerant by design — a proxy-mangled header degrades to a
    server-minted id rather than a rejected request — but bounded, so a
    hostile header cannot smuggle unbounded or unprintable bytes into
    traces and envelopes.
    """
    if not isinstance(value, str):
        return None
    value = value.strip()
    if not value or len(value) > _MAX_ID_LENGTH:
        return None
    if not set(value) <= _ID_ALPHABET:
        return None
    return value


def stamp_ids(payload: dict, trace_id: str, request_id: str) -> dict:
    """A copy of ``payload`` carrying the request's identity.

    Copy, never mutate: coalesced waiters share one result (and one
    pre-built error envelope), so stamping in place would leak one
    waiter's ids into another's response.  Error envelopes are stamped
    inside ``"error"``; everything else at top level.
    """
    stamped = dict(payload)
    if is_error_envelope(stamped):
        entry = dict(stamped["error"])
        entry["trace_id"] = trace_id
        entry["request_id"] = request_id
        stamped["error"] = entry
    else:
        stamped["trace_id"] = trace_id
        stamped["request_id"] = request_id
    return stamped

#: Service-level error kinds (library errors use their class names).
KIND_OVERLOADED = "overloaded"
KIND_DEADLINE = "deadline_exceeded"
KIND_BAD_REQUEST = "bad_request"
KIND_NOT_FOUND = "not_found"
KIND_METHOD = "method_not_allowed"
KIND_SHUTTING_DOWN = "shutting_down"
KIND_INTERNAL = "internal"

#: Kinds a client may transparently retry (the condition is transient).
RETRYABLE_KINDS = frozenset({KIND_OVERLOADED, KIND_SHUTTING_DOWN})

_STATUS_BY_KIND = {
    KIND_OVERLOADED: 429,
    KIND_DEADLINE: 504,
    KIND_BAD_REQUEST: 400,
    KIND_NOT_FOUND: 404,
    KIND_METHOD: 405,
    KIND_SHUTTING_DOWN: 503,
    KIND_INTERNAL: 500,
}

#: Library (BagCQError) failures are the *request's* fault, not the
#: server's: the envelope travels with 422 Unprocessable Content.
LIBRARY_ERROR_STATUS = 422


class BadRequestError(BagCQError):
    """A request body is structurally malformed (missing/mistyped fields).

    Travels as ``kind="bad_request"`` / HTTP 400 — distinct from library
    errors (a well-formed body whose *content* the library rejects keeps
    the exception class name and goes out as 422, preserving
    remote-vs-local error-class parity).
    """


def status_for_kind(kind: str) -> int:
    """The HTTP status code the server sends for an error ``kind``."""
    return _STATUS_BY_KIND.get(kind, LIBRARY_ERROR_STATUS)


def error_envelope(
    kind: str, message: str, retry_after: float | None = None
) -> dict:
    """The canonical JSON body of a failed request."""
    return {
        "protocol_version": PROTOCOL_VERSION,
        "error": {
            "kind": kind,
            "message": message,
            "retry_after": retry_after,
        },
    }


def error_from_exception(
    error: BaseException, retry_after: float | None = None
) -> dict:
    """Envelope for a library exception: ``kind`` is the class name."""
    if isinstance(error, BadRequestError):
        kind = KIND_BAD_REQUEST
    elif isinstance(error, BagCQError):
        kind = type(error).__name__
    else:
        kind = KIND_INTERNAL
    return error_envelope(kind, str(error), retry_after)


def is_error_envelope(body: Any) -> bool:
    """Does ``body`` look like a protocol error envelope?"""
    return (
        isinstance(body, dict)
        and isinstance(body.get("error"), dict)
        and "kind" in body["error"]
    )


def parse_error_envelope(body: Any) -> tuple[str, str, float | None]:
    """``(kind, message, retry_after)`` from an envelope, tolerantly.

    A malformed envelope (e.g. a proxy's HTML error page) degrades to
    ``kind="internal"`` instead of raising — the client still needs a
    classification to decide whether to retry.
    """
    if is_error_envelope(body):
        entry = body["error"]
        retry_after = entry.get("retry_after")
        if retry_after is not None:
            try:
                retry_after = float(retry_after)
            except (TypeError, ValueError):
                retry_after = None
        return str(entry["kind"]), str(entry.get("message", "")), retry_after
    return KIND_INTERNAL, f"malformed error body: {body!r}", None


# -- single-flight request identity ----------------------------------------


def _query_key(query: ConjunctiveQuery) -> ConjunctiveQuery:
    return canonical_component(query)


def request_key(
    endpoint: str,
    *,
    engine: str = "auto",
    query: ConjunctiveQuery | None = None,
    disjuncts: tuple[tuple[ConjunctiveQuery, int], ...] | None = None,
    structure: Structure | None = None,
    extra: tuple = (),
) -> tuple:
    """A hashable identity for one unit of server work.

    Two requests with equal keys are guaranteed to produce the same
    response body (a bijective variable renaming never changes a count,
    a plan's engine choices, or a search verdict), so the server may
    evaluate one and fan the result out to all of them.

    The structure enters through its *fingerprint vector*, not by deep
    equality: cheaper to hash, and version-correct for server-resident
    databases — the same named database at two versions produces two
    different keys, so requests racing an ``/update`` never coalesce
    across versions.
    """
    parts: list = [endpoint, engine]
    if query is not None:
        parts.append(_query_key(query))
    if disjuncts is not None:
        parts.append(
            tuple(
                (_query_key(disjunct), multiplicity)
                for disjunct, multiplicity in disjuncts
            )
        )
    parts.append(
        None if structure is None else structure.fingerprint_vector()
    )
    parts.extend(extra)
    return tuple(parts)
