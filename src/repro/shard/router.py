"""The shard router: consistent-hash front for N worker subprocesses.

**Routing discipline.**  The single-process service already keys its
count cache and single-flight table on α-equivalence
(:func:`~repro.homomorphism.cache.canonical_component`) — so the router
routes on the *same* canonical forms: every request that would coalesce
or cache-hit inside one process lands on the same shard, and per-shard
single-flight keeps collapsing stampedes after sharding.  Database-bound
traffic (``"db"``-carrying requests, ``/db`` loads, ``/update`` deltas)
routes by database name, pinning each named database — and its
version history — to one worker.  The hash is ``blake2b`` over the
canonical rendering, never the salt-randomized ``hash()``, so the
key → shard map is identical across router restarts (which is what
makes per-shard snapshot directories warm the *right* worker).

**Consistent hashing.**  Each shard owns ``virtual_nodes`` points on a
64-bit ring.  A key routes to the first healthy shard at or after its
point; an unhealthy shard's traffic spills to its ring successors
(``shard.rerouted``) and returns home on recovery — no reshuffling of
the healthy shards' key space either way.

**Aggregation.**  ``GET /metrics`` merges every worker's registry with
the router's own: counters and timers sum, gauges sum point-in-time
values, histograms merge bucket-wise (the fixed shared boundaries make
the merge exact — see :class:`repro.obs.metrics.Histogram`) with
quantiles recomputed from the merged buckets.  ``GET /healthz`` nests
each worker's full health row (queue depth, cache occupancy) under an
overall status; ``GET /traces`` concatenates flight recorders with a
``shard`` stamp on every trace.  ``POST /snapshot`` fans out to every
live worker.
"""

from __future__ import annotations

import hashlib
import json
import signal
import threading
import time
import urllib.error
import urllib.request
from bisect import bisect_left
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from repro.errors import BagCQError
from repro.io import query_from_dict
from repro.obs.metrics import Registry, quantile_from_bucket_counts
from repro.obs.report import SCHEMA_VERSION, stable_json_dumps
from repro.queries.parser import parse_query
from repro.service import protocol
from repro.service.handlers import ENDPOINTS
from repro.shard.worker import WorkerProcess, http_get_json

__all__ = [
    "ConsistentHashRing",
    "RouterConfig",
    "ShardRouter",
    "merge_metric_snapshots",
    "routing_key",
    "serve_sharded",
]

#: Router-side counters, pre-registered at zero (deterministic scrapes).
_ROUTER_COUNTERS = (
    "shard.routed",
    "shard.rerouted",
    "shard.proxy_failures",
    "shard.worker_restarts",
    "shard.worker_spawn_failures",
    "shard.snapshot_fanouts",
)

#: Response headers the proxy forwards back verbatim.
_FORWARDED_HEADERS = (
    "Retry-After",
    protocol.TRACE_ID_HEADER,
    protocol.REQUEST_ID_HEADER,
)


@dataclass(frozen=True)
class RouterConfig:
    """Tuning knobs of one :class:`ShardRouter` (see docs/SERVICE.md)."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 → ephemeral; read the bound port off `.address`
    #: Worker subprocesses behind the router.
    shards: int = 2
    #: Worker *threads* inside each subprocess (the existing pool knob).
    workers_per_shard: int = 4
    queue_depth: int = 64
    default_deadline_ms: int = 30_000
    coalesce: bool = True
    #: Root of the durable tier; each shard gets ``shard-NN/`` under it
    #: (the ring is index-stable, so a restarted fleet warm-starts each
    #: shard from exactly its own slice of the α-class space).
    snapshot_dir: str | None = None
    #: Ring points per shard; more points → smoother key spread.
    virtual_nodes: int = 64
    ready_timeout_s: float = 30.0
    #: Per-attempt proxy timeout; above the service's max deadline so
    #: the worker's own deadline machinery answers first.
    proxy_timeout_s: float = 310.0


# -- routing keys ----------------------------------------------------------


def _canonical_text(payload, text) -> str | None:
    """The canonical rendering of one query field, if it parses."""
    from repro.homomorphism.cache import canonical_component

    try:
        if isinstance(payload, dict):
            return str(canonical_component(query_from_dict(payload)))
        if isinstance(text, str):
            return str(canonical_component(parse_query(text)))
    except (BagCQError, KeyError, TypeError, ValueError):
        return None
    return None


def _query_part(body: dict, field: str) -> str | None:
    return _canonical_text(body.get(field), body.get(f"{field}_text"))


def _disjuncts_part(body: dict, field: str) -> str | None:
    raw = body.get(field)
    if not isinstance(raw, list) or not raw:
        return None
    parts = []
    for entry in raw:
        if not isinstance(entry, dict):
            return None
        part = _canonical_text(entry.get("query"), entry.get("query_text"))
        if part is None:
            return None
        parts.append(part)
    return " | ".join(sorted(parts))


def _structure_part(body: dict) -> str:
    """A content digest of the inline database, if any.

    Distinct databases spread across shards even under one query shape;
    identical requests (same structure rendering) stay together so
    coalescing works.  No decoding: the digest is over the raw JSON
    rendering, which is deterministic for clients serializing the same
    structure through :mod:`repro.io`.
    """
    for field in ("structure", "facts"):
        if field in body:
            rendering = json.dumps(body[field], sort_keys=True, default=repr)
            return hashlib.blake2b(
                rendering.encode("utf-8"), digest_size=8
            ).hexdigest()
    return ""


def routing_key(endpoint: str, body) -> str:
    """The shard-routing key of one request — α-stable and process-stable.

    Database-bound requests key on the database name (all versions of a
    named database live on one shard); query-bearing requests key on the
    canonical component(s) plus an inline-structure digest.  Bodies the
    router cannot interpret key on their raw rendering — the chosen
    worker then produces the proper 400, and identical malformed bodies
    at least route consistently.
    """
    if not isinstance(body, dict):
        return f"{endpoint}:opaque:{json.dumps(body, default=repr)}"
    name = body.get("db") if isinstance(body.get("db"), str) else None
    if name is None and endpoint == "db" and isinstance(body.get("name"), str):
        name = body["name"]
    if name is not None:
        return f"db:{name}"
    parts: list[str] = []
    if endpoint == "contain":
        if body.get("kind", "cq") == "ucq":
            for field in ("disjuncts_s", "disjuncts_b"):
                part = _disjuncts_part(body, field)
                parts.append(part if part is not None else "?")
        else:
            for field in ("phi_s", "phi_b"):
                part = _query_part(body, field)
                parts.append(part if part is not None else "?")
    elif body.get("kind", "cq") == "ucq" and "disjuncts" in body:
        part = _disjuncts_part(body, "disjuncts")
        parts.append(part if part is not None else "?")
    else:
        part = _query_part(body, "query")
        parts.append(part if part is not None else "?")
    if all(part == "?" for part in parts):
        # Nothing canonical to route on: fall back to the raw body so
        # the key is at least deterministic.
        rendering = json.dumps(body, sort_keys=True, default=repr)
        return f"{endpoint}:opaque:{rendering}"
    return "|".join(["q", *parts, _structure_part(body)])


class ConsistentHashRing:
    """``virtual_nodes`` blake2b points per shard on a 64-bit ring."""

    def __init__(self, shards: int, virtual_nodes: int = 64) -> None:
        if shards < 1:
            raise ValueError(f"ring needs shards >= 1, got {shards}")
        if virtual_nodes < 1:
            raise ValueError(
                f"ring needs virtual_nodes >= 1, got {virtual_nodes}"
            )
        self.shards = shards
        points = []
        for shard in range(shards):
            for replica in range(virtual_nodes):
                token = f"shard-{shard}-replica-{replica}".encode("utf-8")
                digest = hashlib.blake2b(token, digest_size=8).digest()
                points.append((int.from_bytes(digest, "big"), shard))
        points.sort()
        self._points = points
        self._hashes = [point for point, _ in points]

    @staticmethod
    def _hash(key: str) -> int:
        digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
        return int.from_bytes(digest, "big")

    def candidates(self, key: str) -> list[int]:
        """Every shard, in ring order from the key's point, deduplicated.

        The first entry is the home shard; the rest are the spill order
        when it is unhealthy.
        """
        start = bisect_left(self._hashes, self._hash(key))
        seen: list[int] = []
        for offset in range(len(self._points)):
            _, shard = self._points[(start + offset) % len(self._points)]
            if shard not in seen:
                seen.append(shard)
                if len(seen) == self.shards:
                    break
        return seen

    def route(self, key: str) -> int:
        """The home shard of ``key``."""
        return self.candidates(key)[0]


# -- metrics aggregation ---------------------------------------------------


def _merge_histograms(snapshots: list[dict]) -> dict:
    buckets: dict[str, int] = {}
    count = 0
    total_ms = 0.0
    min_ms: float | None = None
    max_ms: float | None = None
    for snapshot in snapshots:
        count += int(snapshot.get("count", 0))
        total_ms += float(snapshot.get("total_ms", 0.0))
        for key, value in (snapshot.get("buckets") or {}).items():
            buckets[str(key)] = buckets.get(str(key), 0) + int(value)
        for bound, pick in (("min_ms", min), ("max_ms", max)):
            value = snapshot.get(bound)
            if value is not None:
                current = min_ms if bound == "min_ms" else max_ms
                merged = value if current is None else pick(current, value)
                if bound == "min_ms":
                    min_ms = merged
                else:
                    max_ms = merged

    def _quantile(q: float) -> float | None:
        return quantile_from_bucket_counts(buckets, q, max_ms)

    return {
        "type": "histogram",
        "count": count,
        "total_ms": total_ms,
        "mean_ms": total_ms / count if count else 0.0,
        "min_ms": min_ms,
        "max_ms": max_ms,
        "p50_ms": _quantile(0.50),
        "p95_ms": _quantile(0.95),
        "p99_ms": _quantile(0.99),
        "buckets": buckets,
    }


def _merge_timers(snapshots: list[dict]) -> dict:
    count = sum(int(s.get("count", 0)) for s in snapshots)
    total_ms = sum(float(s.get("total_ms", 0.0)) for s in snapshots)
    mins = [s["min_ms"] for s in snapshots if s.get("min_ms") is not None]
    maxes = [s["max_ms"] for s in snapshots if s.get("max_ms") is not None]
    return {
        "type": "timer",
        "count": count,
        "total_ms": total_ms,
        "mean_ms": total_ms / count if count else 0.0,
        "min_ms": min(mins) if mins else None,
        "max_ms": max(maxes) if maxes else None,
    }


def _merge_gauges(snapshots: list[dict]) -> dict:
    values = [s["value"] for s in snapshots if s.get("value") is not None]
    maxes = [s["max"] for s in snapshots if s.get("max") is not None]
    return {
        "type": "gauge",
        # Point-in-time sum across the fleet (inflight, queued, resident
        # databases all sum meaningfully); max is the fleet-wide peak of
        # any single worker, which is what capacity planning reads.
        "value": sum(values) if values else None,
        "max": max(maxes) if maxes else None,
    }


def merge_metric_snapshots(snapshots: list[dict]) -> dict:
    """Merge per-worker ``Registry.snapshot()`` dicts into one fleet view.

    Metrics are matched by name; a name's entries are merged by type
    (counters/timers sum, gauges sum point-in-time values, histograms
    merge bucket-wise and re-derive quantiles — deterministic in any
    merge order).  Entries whose types disagree across workers are
    dropped rather than punned.
    """
    by_name: dict[str, list[dict]] = {}
    for snapshot in snapshots:
        for name, metric in snapshot.items():
            if isinstance(metric, dict):
                by_name.setdefault(name, []).append(metric)
    merged: dict[str, dict] = {}
    for name in sorted(by_name):
        entries = by_name[name]
        kinds = {entry.get("type") for entry in entries}
        if len(kinds) != 1:
            continue
        kind = kinds.pop()
        if kind == "counter":
            merged[name] = {
                "type": "counter",
                "value": sum(int(entry.get("value", 0)) for entry in entries),
            }
        elif kind == "gauge":
            merged[name] = _merge_gauges(entries)
        elif kind == "histogram":
            merged[name] = _merge_histograms(entries)
        elif kind == "timer":
            merged[name] = _merge_timers(entries)
    return merged


# -- the router ------------------------------------------------------------


class _RouterFailure(Exception):
    """A structured router-level failure with its wire envelope."""

    def __init__(
        self, kind: str, message: str, retry_after: float | None = None
    ) -> None:
        super().__init__(message)
        self.kind = kind
        self.envelope = protocol.error_envelope(kind, message, retry_after)
        self.status = protocol.status_for_kind(kind)
        self.retry_after = retry_after


class ShardRouter:
    """N supervised workers behind one consistent-hash HTTP front."""

    def __init__(self, config: RouterConfig | None = None) -> None:
        self.config = config or RouterConfig()
        if self.config.shards < 1:
            raise ValueError(
                f"router needs shards >= 1, got {self.config.shards}"
            )
        self.registry = Registry()
        for name in _ROUTER_COUNTERS:
            self.registry.counter(name)
        self.registry.gauge("shard.workers_alive").set(0)
        self.ring = ConsistentHashRing(
            self.config.shards, self.config.virtual_nodes
        )
        self.workers: list[WorkerProcess] = []
        self._httpd: ThreadingHTTPServer | None = None
        self._http_thread: threading.Thread | None = None
        self._started = False
        self._closed = False

    # -- lifecycle ---------------------------------------------------------

    def _shard_snapshot_dir(self, shard: int) -> str | None:
        if self.config.snapshot_dir is None:
            return None
        directory = Path(self.config.snapshot_dir) / f"shard-{shard:02d}"
        directory.mkdir(parents=True, exist_ok=True)
        return str(directory)

    def start(self) -> "ShardRouter":
        if self._started:
            raise RuntimeError("router already started")
        self._started = True
        self.workers = [
            WorkerProcess(
                shard,
                host=self.config.host,
                workers=self.config.workers_per_shard,
                queue_depth=self.config.queue_depth,
                default_deadline_ms=self.config.default_deadline_ms,
                coalesce=self.config.coalesce,
                snapshot_dir=self._shard_snapshot_dir(shard),
                registry=self.registry,
                ready_timeout_s=self.config.ready_timeout_s,
            )
            for shard in range(self.config.shards)
        ]
        # Spawn concurrently: worker startup cost is interpreter import
        # plus warm-restore, and the fleet should pay it once, not N times.
        errors: list[BaseException] = []

        def _start(worker: WorkerProcess) -> None:
            try:
                worker.start()
            except BaseException as error:  # noqa: BLE001 — re-raised below
                errors.append(error)

        threads = [
            threading.Thread(target=_start, args=(worker,), daemon=True)
            for worker in self.workers
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            self.close()
            raise RuntimeError(
                f"{len(errors)} of {self.config.shards} workers failed to "
                f"start: {errors[0]}"
            )
        router = self

        class _Handler(_RouterHandler):
            shard_router = router

        self._httpd = ThreadingHTTPServer(
            (self.config.host, self.config.port), _Handler
        )
        self._httpd.daemon_threads = True
        self._http_thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="bagcq-router-http",
            daemon=True,
        )
        self._http_thread.start()
        return self

    @property
    def address(self) -> tuple[str, int]:
        if self._httpd is None:
            raise RuntimeError("router not started")
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
        if self._http_thread is not None:
            self._http_thread.join(timeout=10)
        threads = [
            threading.Thread(target=worker.stop, daemon=True)
            for worker in self.workers
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)

    def __enter__(self) -> "ShardRouter":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- aggregation -------------------------------------------------------

    def _live_workers(self) -> list[tuple[WorkerProcess, str]]:
        return [
            (worker, worker.url)
            for worker in self.workers
            if worker.url is not None
        ]

    def health(self) -> dict:
        rows = []
        alive = 0
        for worker in self.workers:
            row = worker.describe()
            url = row["url"]
            if url is not None:
                try:
                    row["health"] = http_get_json(
                        f"{url}/healthz", timeout_s=5.0
                    )
                    alive += 1
                except (urllib.error.URLError, OSError, ValueError) as error:
                    row["alive"] = False
                    row["error"] = str(error)
            rows.append(row)
        self.registry.gauge("shard.workers_alive").set(alive)
        aggregate = {
            "inflight": sum(
                row.get("health", {}).get("inflight", 0) for row in rows
            ),
            "queued": sum(
                row.get("health", {}).get("queued", 0) for row in rows
            ),
        }
        return {
            "protocol_version": protocol.PROTOCOL_VERSION,
            "role": "router",
            "status": "ok" if alive == len(self.workers) else "degraded",
            "shards": self.config.shards,
            "workers_alive": alive,
            "aggregate": aggregate,
            "workers": rows,
        }

    def metrics_json(self) -> str:
        snapshots = [self.registry.snapshot()]
        for _worker, url in self._live_workers():
            try:
                body = http_get_json(f"{url}/metrics", timeout_s=5.0)
                snapshots.append(body.get("metrics", {}))
            except (urllib.error.URLError, OSError, ValueError):
                continue
        return stable_json_dumps(
            {
                "schema_version": SCHEMA_VERSION,
                "shards": self.config.shards,
                "metrics": merge_metric_snapshots(snapshots),
            }
        )

    def traces_json(self) -> str:
        capacity = recorded = dropped = 0
        traces: list[dict] = []
        for worker, url in self._live_workers():
            try:
                body = http_get_json(f"{url}/traces", timeout_s=5.0)
            except (urllib.error.URLError, OSError, ValueError):
                continue
            capacity += int(body.get("capacity", 0))
            recorded += int(body.get("recorded", 0))
            dropped += int(body.get("dropped", 0))
            for trace in body.get("traces", ()):
                if isinstance(trace, dict):
                    trace = dict(trace)
                    trace["shard"] = worker.shard_index
                traces.append(trace)
        return stable_json_dumps(
            {
                "schema_version": SCHEMA_VERSION,
                "shards": self.config.shards,
                "capacity": capacity,
                "recorded": recorded,
                "dropped": dropped,
                "traces": traces,
            }
        )

    def snapshot_all(self) -> dict:
        """Fan ``POST /snapshot`` out to every live worker."""
        self.registry.counter("shard.snapshot_fanouts").inc()
        rows = []
        totals = {"counts": 0, "plans": 0, "containment": 0}
        from repro.shard.worker import http_post_json

        for worker, url in self._live_workers():
            row: dict = {"shard": worker.shard_index}
            try:
                result = http_post_json(f"{url}/snapshot", {}, timeout_s=60.0)
                row["saved"] = result.get("saved", {})
                for tier in totals:
                    totals[tier] += int(row["saved"].get(tier, 0))
            except urllib.error.HTTPError as error:
                row["error"] = f"http {error.code}"
            except (urllib.error.URLError, OSError, ValueError) as error:
                row["error"] = str(error)
            rows.append(row)
        return {
            "protocol_version": protocol.PROTOCOL_VERSION,
            "shards": self.config.shards,
            "saved": totals,
            "workers": rows,
        }

    # -- proxying ----------------------------------------------------------

    def forward(
        self, endpoint: str, raw_body: bytes, headers
    ) -> tuple[int, dict[str, str], bytes]:
        """Route one POST to its shard; returns (status, headers, body).

        Spill discipline: connection-level failures (worker down or
        dying) advance along the ring — except for ``/update``, which is
        not idempotent from the router's vantage point (the delta may
        have applied before the connection died), so it surfaces a
        retryable 503 and lets the *client* decide.  HTTP-level errors
        (4xx/5xx envelopes) are worker answers, forwarded verbatim.
        """
        try:
            body = json.loads(raw_body.decode("utf-8")) if raw_body else {}
        except (ValueError, UnicodeDecodeError):
            body = None  # routed opaquely; the worker sends the 400
        key = routing_key(endpoint, body if body is not None else raw_body.hex())
        candidates = self.ring.candidates(key)
        self.registry.counter("shard.routed").inc()
        attempts = 0
        for position, shard in enumerate(candidates):
            worker = self.workers[shard]
            url = worker.url
            if url is None:
                continue
            if position > 0 or attempts > 0:
                self.registry.counter("shard.rerouted").inc()
            attempts += 1
            request = urllib.request.Request(
                f"{url}/{endpoint}",
                data=raw_body,
                headers=self._forward_headers(headers),
            )
            try:
                with urllib.request.urlopen(
                    request, timeout=self.config.proxy_timeout_s
                ) as response:
                    return (
                        response.status,
                        self._response_headers(response.headers),
                        response.read(),
                    )
            except urllib.error.HTTPError as error:
                return (
                    error.code,
                    self._response_headers(error.headers),
                    error.read(),
                )
            except (urllib.error.URLError, OSError) as error:
                self.registry.counter("shard.proxy_failures").inc()
                if endpoint == "update":
                    raise _RouterFailure(
                        protocol.KIND_SHUTTING_DOWN,
                        f"shard {shard} failed mid-update ({error}); "
                        "retry after verifying the database version",
                        retry_after=0.1,
                    ) from error
                continue
        raise _RouterFailure(
            protocol.KIND_SHUTTING_DOWN,
            "no shard is currently accepting work; retry shortly",
            retry_after=0.2,
        )

    @staticmethod
    def _forward_headers(headers) -> dict[str, str]:
        forwarded = {"Content-Type": "application/json"}
        if headers is not None:
            for name in (
                protocol.TRACE_ID_HEADER,
                protocol.REQUEST_ID_HEADER,
                protocol.ATTEMPT_HEADER,
            ):
                value = headers.get(name)
                if value is not None:
                    forwarded[name] = value
        return forwarded

    @staticmethod
    def _response_headers(headers) -> dict[str, str]:
        result = {}
        if headers is not None:
            for name in _FORWARDED_HEADERS:
                value = headers.get(name)
                if value is not None:
                    result[name] = value
        return result


class _RouterHandler(BaseHTTPRequestHandler):
    """Routes HTTP onto the :class:`ShardRouter` it belongs to."""

    shard_router: ShardRouter  # set by the start() subclass
    protocol_version = "HTTP/1.1"
    timeout = 30
    server_version = "bagcq-router/1"

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        self.shard_router.registry.counter("shard.http_lines").inc()

    def _send_body(
        self, status: int, body: bytes, headers: dict[str, str] | None = None
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            if name.lower() != "content-type":
                self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, payload: dict) -> None:
        self._send_body(status, json.dumps(payload).encode("utf-8"))

    def _send_failure(self, failure: _RouterFailure) -> None:
        headers = {}
        if failure.retry_after is not None:
            headers["Retry-After"] = f"{failure.retry_after:.3f}"
        self._send_body(
            failure.status,
            json.dumps(failure.envelope).encode("utf-8"),
            headers,
        )

    def do_GET(self) -> None:  # noqa: N802 — http.server API
        router = self.shard_router
        if self.path == "/healthz":
            self._send_json(200, router.health())
        elif self.path == "/metrics":
            self._send_body(200, router.metrics_json().encode("utf-8"))
        elif self.path == "/traces":
            self._send_body(200, router.traces_json().encode("utf-8"))
        elif self.path.lstrip("/") in ENDPOINTS or self.path == "/snapshot":
            self._send_failure(
                _RouterFailure(
                    protocol.KIND_METHOD, f"{self.path} requires POST"
                )
            )
        else:
            self._send_failure(
                _RouterFailure(
                    protocol.KIND_NOT_FOUND, f"no such endpoint {self.path}"
                )
            )

    def do_POST(self) -> None:  # noqa: N802 — http.server API
        router = self.shard_router
        endpoint = self.path.lstrip("/")
        if endpoint in ("healthz", "metrics", "traces"):
            self._send_failure(
                _RouterFailure(
                    protocol.KIND_METHOD, f"{self.path} requires GET"
                )
            )
            return
        if endpoint == "snapshot":
            self._send_json(200, router.snapshot_all())
            return
        if endpoint not in ENDPOINTS:
            self._send_failure(
                _RouterFailure(
                    protocol.KIND_NOT_FOUND, f"unknown endpoint /{endpoint}"
                )
            )
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = 0
        raw = self.rfile.read(length) if length else b""
        try:
            status, headers, body = router.forward(endpoint, raw, self.headers)
        except _RouterFailure as failure:
            self._send_failure(failure)
            return
        self._send_body(status, body, headers)


def serve_sharded(config: RouterConfig | None = None) -> None:
    """Blocking entry point (``bagcq serve --shards N``)."""
    router = ShardRouter(config)
    router.start()
    host, port = router.address
    print(
        f"bagcq router listening on http://{host}:{port} "
        f"({router.config.shards} shards)",
        flush=True,
    )
    # A bare SIGTERM (``kill``, process managers, CI traps) would kill
    # the router outright and orphan every worker subprocess; route it
    # through the same drain path as Ctrl-C.
    def _terminate(signum, frame):
        raise KeyboardInterrupt

    previous = signal.signal(signal.SIGTERM, _terminate)
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        print("draining shards…", flush=True)
    finally:
        signal.signal(signal.SIGTERM, previous)
        router.close()
