"""Disk-backed, content-addressed persistence for the warm caches.

The whole point of the cache stack — Lemma 1 multiplicativity makes
α-equivalent components recur, so their counts, plans, and containment
verdicts are highly reusable — is defeated every time a process dies
with its caches.  This module gives the three α-keyed caches a durable
tier: each entry is one small JSON file named by the SHA-256 digest of
its canonical content, exactly the addressing scheme
:mod:`repro.qa.corpus` uses for fuzzing findings.  Content addressing
makes writes idempotent (re-storing an entry rewrites the same file),
dedupes across snapshots for free, and turns corruption detection into
a digest check.

Keys survive the process boundary because every ingredient is already
canonical: component queries travel through
:func:`repro.homomorphism.cache.canonical_component` (α-equivalence
classes), structure dependencies through content fingerprints
(:meth:`~repro.relational.structure.Structure.relation_fingerprint`,
``hashlib``-based, never the salted ``hash``), and queries serialize
via :mod:`repro.io`.  Compiled artifacts are closures and are *never*
persisted — they rebuild on demand from the restored profiles.

Restore mirrors ``qa/corpus.py``'s stance on malformed entries but
inverts the failure mode: a corpus replay *raises* on a bad file (a
finding must not silently vanish), while a cache restore *skips* it —
a truncated, garbage, wrong-version, or digest-mismatched snapshot
file costs one ``shard.snapshot.rejected`` tick, never a crash and
never a wrong count (values only enter a cache after full decode +
digest verification).
"""

from __future__ import annotations

import hashlib
import json
import threading
from dataclasses import dataclass
from pathlib import Path

from repro.errors import BagCQError
from repro.io import query_from_dict, query_to_dict
from repro.obs import metrics as obs_metrics
from repro.queries.cq import ConjunctiveQuery
from repro.queries.terms import Constant, Variable

__all__ = [
    "DurableCacheStore",
    "RestoreReport",
    "SNAPSHOT_COUNTERS",
    "SnapshotError",
]

#: Format stamp carried by every entry; bump on incompatible layout
#: changes so old snapshots are rejected (skipped), not misread.
FORMAT_VERSION = 1

#: The three persisted tiers, each its own subdirectory of the root.
TIERS = ("counts", "plans", "containment")

#: The ``shard.snapshot.*`` counter family, pre-registered at zero by
#: every server that owns a durable store (deterministic scrapes).
SNAPSHOT_COUNTERS = (
    "shard.snapshot.saved",
    "shard.snapshot.loaded",
    "shard.snapshot.rejected",
    "shard.snapshot.invalidated",
)

_TUPLE_TAG = "§"
_CONST_TAG = "§const"
_VAR_TAG = "§var"


class SnapshotError(BagCQError):
    """A value that cannot be encoded for (or decoded from) a snapshot."""


def _encode_value(value):
    """JSON-encode one cache-key ingredient, reversibly.

    Tuples are tagged (JSON arrays decode back to tuples only through
    the tag), terms carry their kind; ``None``/bool/int/str pass
    through.  Anything else is a key shape this format does not know —
    the caller skips that entry rather than persisting a lossy form.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, tuple):
        return {_TUPLE_TAG: [_encode_value(item) for item in value]}
    if isinstance(value, Constant):
        return {_CONST_TAG: value.name}
    if isinstance(value, Variable):
        return {_VAR_TAG: value.name}
    raise SnapshotError(
        f"cannot persist value of type {type(value).__name__}: {value!r}"
    )


def _decode_value(payload):
    if payload is None or isinstance(payload, (bool, int, str)):
        return payload
    if isinstance(payload, dict):
        if set(payload) == {_TUPLE_TAG}:
            items = payload[_TUPLE_TAG]
            if not isinstance(items, list):
                raise SnapshotError("tuple payload must be a JSON array")
            return tuple(_decode_value(item) for item in items)
        if set(payload) == {_CONST_TAG}:
            return Constant(payload[_CONST_TAG])
        if set(payload) == {_VAR_TAG}:
            return Variable(payload[_VAR_TAG])
    raise SnapshotError(f"unrecognized snapshot payload: {payload!r}")


def _entry_digest(entry: dict) -> str:
    """The content address of one entry — ``qa/corpus.py``'s scheme."""
    canonical = json.dumps(entry, sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SnapshotError(message)


@dataclass(frozen=True)
class RestoreReport:
    """What one tier's restore pass did."""

    loaded: int = 0
    rejected: int = 0

    def to_dict(self) -> dict:
        return {"loaded": self.loaded, "rejected": self.rejected}


class DurableCacheStore:
    """One directory of content-addressed cache entries, three tiers deep.

    Attach to the caches via their ``attach_durable`` hooks: stores
    write through (one file per entry, idempotent), relation-scoped
    invalidation deletes the affected count files, and
    ``restore_*``/``save_*`` bulk-sync a cache with the disk.  All
    disk I/O happens outside the caches' locks (the hooks are called
    post-store), so the hot path never blocks on the filesystem.

    Counter discipline: increments land in the registry handed to the
    constructor (the owning server's), falling back to the ambient
    :mod:`repro.obs` registry so CLI-driven restores still count.
    """

    def __init__(self, root, registry=None) -> None:
        self.root = Path(root)
        self._registry = registry
        self._suspended = False
        self._index_lock = threading.Lock()
        #: digest → (relation names, depends-on-domain) for count entries
        #: (``None`` for undecodable files, dropped on any invalidation);
        #: lets ``/update`` invalidation delete files without re-decoding.
        self._count_index: dict[str, tuple[frozenset, bool] | None] = {}
        for tier in TIERS:
            (self.root / tier).mkdir(parents=True, exist_ok=True)
        self._scan_count_index()

    # -- counters ----------------------------------------------------------

    def _count(self, name: str, amount: int = 1) -> None:
        if amount <= 0:
            return
        if self._registry is not None:
            self._registry.counter(name).inc(amount)
        else:
            obs_metrics.add(name, amount)

    # -- file layer --------------------------------------------------------

    def _tier_dir(self, tier: str) -> Path:
        return self.root / tier

    def _write_entry(self, tier: str, entry: dict) -> str:
        digest = _entry_digest(entry)
        path = self._tier_dir(tier) / f"{digest}.json"
        if not path.exists():
            try:
                path.write_text(
                    json.dumps(entry, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8",
                )
            except OSError:
                # A full or vanished disk degrades the durable tier to a
                # no-op; it must never take the serving path down with it.
                return digest
            self._count("shard.snapshot.saved")
        return digest

    def _iter_entries(self, tier: str, rejected_paths: list | None = None):
        """Yield ``(path, entry)`` for decodable files; count the rest.

        The gate every entry passes before a cache sees it: valid JSON,
        a JSON-object payload, the current format stamp, the right
        tier, and a filename that matches the content digest (a
        truncated or hand-edited file fails here).  Gate failures tick
        ``shard.snapshot.rejected`` and, when the caller passes
        ``rejected_paths``, land there so restore reports can include
        them.
        """
        for path in sorted(self._tier_dir(tier).glob("*.json")):
            try:
                with path.open("r", encoding="utf-8") as handle:
                    entry = json.load(handle)
            except (OSError, ValueError):
                entry = None
            if (
                not isinstance(entry, dict)
                or entry.get("format") != FORMAT_VERSION
                or entry.get("tier") != tier
                or _entry_digest(entry) != path.stem
            ):
                self._count("shard.snapshot.rejected")
                if rejected_paths is not None:
                    rejected_paths.append(path)
                continue
            yield path, entry

    def _suspend(self):
        """Mute write-through while a restore replays entries into a cache
        (the cache's store hook would otherwise rewrite every file it
        just read)."""
        store = self

        class _Muted:
            def __enter__(self):
                store._suspended = True

            def __exit__(self, *exc_info):
                store._suspended = False

        return _Muted()

    # -- counts tier -------------------------------------------------------

    def _encode_count_entry(self, key, value) -> dict | None:
        """The counts-tier entry for one cache item, or ``None`` when the
        key has a shape this format does not recognize (foreign keys are
        simply not persisted — same conservatism as
        :func:`~repro.homomorphism.cache.key_relations`)."""
        from repro.homomorphism.cache import (
            key_depends_on_domain,
            key_relations,
        )

        if not (
            isinstance(key, tuple)
            and len(key) == 3
            and isinstance(key[0], ConjunctiveQuery)
            and isinstance(key[2], str)
        ):
            return None
        relations = key_relations(key)
        if relations is None:
            return None
        if not isinstance(value, int) or isinstance(value, bool):
            return None
        try:
            fingerprint = _encode_value(key[1])
            component = query_to_dict(key[0])
        except BagCQError:
            return None
        return {
            "format": FORMAT_VERSION,
            "tier": "counts",
            "component": component,
            "fingerprint": fingerprint,
            "engine": key[2],
            "value": value,
            "relations": sorted(relations),
            "domain_dependent": key_depends_on_domain(key),
        }

    def _decode_count_entry(self, entry: dict) -> tuple[tuple, int]:
        component = query_from_dict(entry["component"])
        fingerprint = _decode_value(entry["fingerprint"])
        engine = entry["engine"]
        value = entry["value"]
        _require(isinstance(engine, str), "'engine' must be a string")
        _require(
            isinstance(value, int) and not isinstance(value, bool),
            "'value' must be an integer count",
        )
        _require(
            isinstance(fingerprint, tuple) and len(fingerprint) == 4,
            "'fingerprint' must decode to a 4-tuple",
        )
        return (component, fingerprint, engine), value

    def record_count(self, key, value) -> None:
        """Write-through hook: persist one freshly stored count."""
        if self._suspended:
            return
        entry = self._encode_count_entry(key, value)
        if entry is None:
            return
        digest = self._write_entry("counts", entry)
        with self._index_lock:
            self._count_index[digest] = (
                frozenset(entry["relations"]),
                entry["domain_dependent"],
            )

    def save_counts(self, cache) -> int:
        """Persist every recognizable entry of a ``CountCache``."""
        saved = 0
        for key, value in cache.items():
            entry = self._encode_count_entry(key, value)
            if entry is None:
                continue
            digest = self._write_entry("counts", entry)
            with self._index_lock:
                self._count_index[digest] = (
                    frozenset(entry["relations"]),
                    entry["domain_dependent"],
                )
            saved += 1
        return saved

    def restore_counts(self, cache) -> RestoreReport:
        """Warm a ``CountCache`` from disk, skipping anything suspect."""
        loaded = 0
        rejected = 0
        gate_rejects: list = []
        with self._suspend():
            for path, entry in self._iter_entries("counts", gate_rejects):
                try:
                    key, value = self._decode_count_entry(entry)
                except (BagCQError, KeyError, TypeError, ValueError):
                    rejected += 1
                    continue
                cache.store(key, value)
                with self._index_lock:
                    self._count_index[path.stem] = (
                        frozenset(entry.get("relations", ())),
                        bool(entry.get("domain_dependent", True)),
                    )
                loaded += 1
        self._count("shard.snapshot.loaded", loaded)
        # Gate failures already ticked the counter inside _iter_entries.
        self._count("shard.snapshot.rejected", rejected)
        return RestoreReport(loaded, rejected + len(gate_rejects))

    def _scan_count_index(self) -> None:
        """Build the relations index from whatever is on disk already.

        Runs at construction (without counters: scanning is not a
        restore) so ``/update`` invalidation covers entries written by
        an earlier process even before any restore happened.
        """
        for path in self._tier_dir("counts").glob("*.json"):
            try:
                with path.open("r", encoding="utf-8") as handle:
                    entry = json.load(handle)
                relations = frozenset(entry["relations"])
                domain_dependent = bool(entry["domain_dependent"])
            except (OSError, ValueError, KeyError, TypeError):
                # Undecodable files are conservatively indexed as
                # depending on everything, so invalidation removes them.
                self._count_index[path.stem] = None
                continue
            self._count_index[path.stem] = (relations, domain_dependent)

    def invalidate_relations(
        self, relations, *, domain_changed: bool = False
    ) -> int:
        """Delete persisted counts depending on any of ``relations``.

        The disk mirror of ``CountCache.invalidate_relations`` — called
        by it, so a ``/update`` that evicts in-memory entries evicts
        their files in the same breath.
        """
        touched = frozenset(relations)
        with self._index_lock:
            victims = [
                digest
                for digest, indexed in self._count_index.items()
                if indexed is None  # undecodable: drop conservatively
                or bool(indexed[0] & touched)
                or (domain_changed and indexed[1])
            ]
            for digest in victims:
                self._count_index.pop(digest, None)
        dropped = 0
        for digest in victims:
            path = self._tier_dir("counts") / f"{digest}.json"
            try:
                path.unlink()
                dropped += 1
            except OSError:
                continue
        self._count("shard.snapshot.invalidated", dropped)
        return dropped

    # -- plans tier --------------------------------------------------------

    def record_plan(self, component: ConjunctiveQuery, profile) -> None:
        """Write-through hook: persist one freshly analyzed profile."""
        if self._suspended:
            return
        try:
            entry = {
                "format": FORMAT_VERSION,
                "tier": "plans",
                "component": query_to_dict(component),
                "profile": {
                    "atom_count": profile.atom_count,
                    "variable_count": profile.variable_count,
                    "inequality_count": profile.inequality_count,
                    "acyclic": profile.acyclic,
                    "treewidth_bound": profile.treewidth_bound,
                    "relations": [list(pair) for pair in profile.relations],
                },
            }
        except BagCQError:
            return
        self._write_entry("plans", entry)

    def save_plans(self, cache) -> int:
        """Persist every profile of a ``PlanCache`` (artifacts never)."""
        saved = 0
        for component, profile in cache.profile_items():
            self.record_plan(component, profile)
            saved += 1
        return saved

    def restore_plans(self, cache) -> RestoreReport:
        """Warm a ``PlanCache``'s profile level from disk."""
        from repro.planner.analyze import ComponentProfile

        loaded = 0
        rejected = 0
        gate_rejects: list = []
        with self._suspend():
            for _path, entry in self._iter_entries("plans", gate_rejects):
                try:
                    component = query_from_dict(entry["component"])
                    raw = entry["profile"]
                    profile = ComponentProfile(
                        atom_count=int(raw["atom_count"]),
                        variable_count=int(raw["variable_count"]),
                        inequality_count=int(raw["inequality_count"]),
                        acyclic=bool(raw["acyclic"]),
                        treewidth_bound=int(raw["treewidth_bound"]),
                        relations=tuple(
                            (str(name), int(arity))
                            for name, arity in raw["relations"]
                        ),
                    )
                except (BagCQError, KeyError, TypeError, ValueError):
                    rejected += 1
                    continue
                cache.store_profile(component, profile)
                loaded += 1
        self._count("shard.snapshot.loaded", loaded)
        self._count("shard.snapshot.rejected", rejected)
        return RestoreReport(loaded, rejected + len(gate_rejects))

    # -- containment tier --------------------------------------------------

    def record_containment(self, key, value) -> None:
        """Write-through hook: persist one freshly decided verdict."""
        if self._suspended:
            return
        if not (
            isinstance(key, tuple)
            and len(key) == 3
            and isinstance(key[0], ConjunctiveQuery)
            and isinstance(key[1], ConjunctiveQuery)
            and isinstance(key[2], str)
        ):
            return
        if not (
            isinstance(value, tuple)
            and len(value) == 2
            and isinstance(value[0], bool)
            and (value[1] is None or isinstance(value[1], int))
        ):
            return
        try:
            entry = {
                "format": FORMAT_VERSION,
                "tier": "containment",
                "phi_s": query_to_dict(key[0]),
                "phi_b": query_to_dict(key[1]),
                "engine": key[2],
                "contained": value[0],
                "phi_s_count": value[1],
            }
        except BagCQError:
            return
        self._write_entry("containment", entry)

    def save_containment(self, cache) -> int:
        """Persist every verdict of a ``ContainmentCache``."""
        saved = 0
        for key, value in cache.items():
            self.record_containment(key, value)
            saved += 1
        return saved

    def restore_containment(self, cache) -> RestoreReport:
        """Warm a ``ContainmentCache`` from disk."""
        loaded = 0
        rejected = 0
        gate_rejects: list = []
        with self._suspend():
            for _path, entry in self._iter_entries(
                "containment", gate_rejects
            ):
                try:
                    phi_s = query_from_dict(entry["phi_s"])
                    phi_b = query_from_dict(entry["phi_b"])
                    engine = entry["engine"]
                    contained = entry["contained"]
                    phi_s_count = entry["phi_s_count"]
                    _require(isinstance(engine, str), "bad engine")
                    _require(isinstance(contained, bool), "bad verdict")
                    _require(
                        phi_s_count is None
                        or (
                            isinstance(phi_s_count, int)
                            and not isinstance(phi_s_count, bool)
                        ),
                        "bad phi_s_count",
                    )
                except (BagCQError, KeyError, TypeError, ValueError):
                    rejected += 1
                    continue
                cache.store((phi_s, phi_b, engine), (contained, phi_s_count))
                loaded += 1
        self._count("shard.snapshot.loaded", loaded)
        self._count("shard.snapshot.rejected", rejected)
        return RestoreReport(loaded, rejected + len(gate_rejects))

    def invalidate_containment_relations(self, relations) -> int:
        """Delete persisted verdicts mentioning any of ``relations``.

        The disk mirror of ``ContainmentCache.invalidate_relations``
        (schema-level changes only; database deltas never stale a
        verdict).  Files must be decoded to know their relations —
        acceptable, since schema redefinition is rare and offline.
        """
        touched = frozenset(relations)
        dropped = 0
        for path, entry in list(self._iter_entries("containment")):
            try:
                phi_s = query_from_dict(entry["phi_s"])
                phi_b = query_from_dict(entry["phi_b"])
                mentioned = {atom.relation for atom in phi_s.atoms}
                mentioned.update(atom.relation for atom in phi_b.atoms)
                affected = bool(mentioned & touched)
            except (BagCQError, KeyError, TypeError, ValueError):
                affected = True
            if affected:
                try:
                    path.unlink()
                    dropped += 1
                except OSError:
                    continue
        self._count("shard.snapshot.invalidated", dropped)
        return dropped

    # -- whole-store operations --------------------------------------------

    def save_all(self, count_cache, plan_cache, containment_cache) -> dict:
        """Persist all three caches; the ``/snapshot`` response body."""
        return {
            "counts": self.save_counts(count_cache),
            "plans": self.save_plans(plan_cache),
            "containment": self.save_containment(containment_cache),
        }

    def restore_all(self, count_cache, plan_cache, containment_cache) -> dict:
        """Warm all three caches; the startup warm-restore report."""
        return {
            "counts": self.restore_counts(count_cache).to_dict(),
            "plans": self.restore_plans(plan_cache).to_dict(),
            "containment": self.restore_containment(containment_cache).to_dict(),
        }

    def stats(self) -> dict:
        """Files per tier (the ``/healthz`` surface of the store)."""
        return {
            tier: sum(1 for _ in self._tier_dir(tier).glob("*.json"))
            for tier in TIERS
        }

    def __repr__(self) -> str:
        return f"DurableCacheStore({str(self.root)!r})"
