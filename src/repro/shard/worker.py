"""One shard's worker: a ``repro.service`` server as a subprocess.

A worker is the *whole* existing single-process server — admission
queue, single-flight, caches, tracing — run under ``python -m repro.cli
serve`` with an ephemeral port.  This module owns its lifecycle:

* **Spawn + port discovery.**  The server prints ``bagcq service
  listening on http://host:port`` on stdout (flushed); the supervisor
  parses that line rather than racing to pre-pick a free port.
* **Readiness.**  A worker is routable only after ``GET /healthz``
  answers 200 — which also means its warm-restore (when a snapshot
  directory is configured) has already happened, since restore runs
  before the socket opens.
* **Restart on crash, with backoff.**  A monitor thread waits on the
  process; an exit while not stopping re-spawns it after an
  exponentially growing delay (reset after a stable stretch), counting
  ``shard.worker_restarts``.  The ephemeral port changes across
  restarts, so routing always reads :attr:`WorkerProcess.url` live.
* **Graceful drain.**  ``stop()`` sends SIGINT — the server's own
  KeyboardInterrupt path drains queued and in-flight work — and only
  escalates to terminate/kill on timeout.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

__all__ = ["WorkerProcess", "http_get_json", "http_post_json"]

_LISTENING_PREFIX = "bagcq service listening on "


def http_get_json(url: str, timeout_s: float = 10.0) -> dict:
    """GET ``url`` and decode the JSON body (2xx only; errors raise)."""
    with urllib.request.urlopen(url, timeout=timeout_s) as response:
        return json.loads(response.read().decode("utf-8"))


def http_post_json(url: str, body: dict, timeout_s: float = 60.0) -> dict:
    """POST ``body`` as JSON and decode the JSON response (2xx only)."""
    data = json.dumps(body).encode("utf-8")
    request = urllib.request.Request(
        url, data=data, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(request, timeout=timeout_s) as response:
        return json.loads(response.read().decode("utf-8"))


def _worker_environment() -> dict:
    """The child's env, with this interpreter's ``repro`` importable."""
    environment = dict(os.environ)
    package_root = str(Path(__file__).resolve().parent.parent.parent)
    existing = environment.get("PYTHONPATH")
    if existing:
        if package_root not in existing.split(os.pathsep):
            environment["PYTHONPATH"] = package_root + os.pathsep + existing
    else:
        environment["PYTHONPATH"] = package_root
    return environment


class WorkerProcess:
    """Supervised lifecycle of one shard's server subprocess."""

    def __init__(
        self,
        shard_index: int,
        *,
        host: str = "127.0.0.1",
        workers: int = 4,
        queue_depth: int = 64,
        default_deadline_ms: int = 30_000,
        coalesce: bool = True,
        snapshot_dir: str | None = None,
        registry=None,
        ready_timeout_s: float = 30.0,
        restart_backoff_s: float = 0.1,
        restart_backoff_cap_s: float = 2.0,
    ) -> None:
        self.shard_index = shard_index
        self.host = host
        self.workers = workers
        self.queue_depth = queue_depth
        self.default_deadline_ms = default_deadline_ms
        self.coalesce = coalesce
        self.snapshot_dir = snapshot_dir
        self.ready_timeout_s = ready_timeout_s
        self.restart_backoff_s = restart_backoff_s
        self.restart_backoff_cap_s = restart_backoff_cap_s
        self._registry = registry
        self._lock = threading.Lock()
        self._process: subprocess.Popen | None = None
        self._url: str | None = None
        self._stopping = False
        self._monitor: threading.Thread | None = None
        self._restarts = 0
        self._started_at: float | None = None

    # -- observable state --------------------------------------------------

    @property
    def url(self) -> str | None:
        """The worker's base URL, or ``None`` while it is down."""
        with self._lock:
            return self._url

    @property
    def pid(self) -> int | None:
        with self._lock:
            return None if self._process is None else self._process.pid

    @property
    def restarts(self) -> int:
        return self._restarts

    def healthy(self) -> bool:
        with self._lock:
            return (
                self._process is not None
                and self._process.poll() is None
                and self._url is not None
            )

    def describe(self) -> dict:
        """The router's ``/healthz`` row for this worker."""
        return {
            "shard": self.shard_index,
            "url": self.url,
            "pid": self.pid,
            "alive": self.healthy(),
            "restarts": self._restarts,
            "snapshot_dir": self.snapshot_dir,
        }

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "WorkerProcess":
        """Spawn, wait for readiness, and begin supervising."""
        self._spawn()
        self._monitor = threading.Thread(
            target=self._monitor_loop,
            name=f"bagcq-shard-{self.shard_index}-monitor",
            daemon=True,
        )
        self._monitor.start()
        return self

    def _command(self) -> list[str]:
        command = [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--host",
            self.host,
            "--port",
            "0",
            "--workers",
            str(self.workers),
            "--queue-depth",
            str(self.queue_depth),
            "--deadline-ms",
            str(self.default_deadline_ms),
        ]
        if not self.coalesce:
            command.append("--no-coalesce")
        if self.snapshot_dir is not None:
            command.extend(["--snapshot-dir", str(self.snapshot_dir)])
        return command

    def _spawn(self) -> None:
        # A router backgrounded by a non-interactive shell inherits
        # SIGINT set to SIG_IGN (POSIX job control), and CPython only
        # installs its KeyboardInterrupt handler when SIGINT is *not*
        # ignored at startup — so without this reset the drain SIGINT
        # from ``stop()`` would be silently dropped and every shutdown
        # would burn the full drain timeout before escalating.
        process = subprocess.Popen(
            self._command(),
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            env=_worker_environment(),
            text=True,
            preexec_fn=lambda: signal.signal(signal.SIGINT, signal.SIG_DFL),
        )
        with self._lock:
            self._process = process
            self._url = None
        url = self._discover_url(process)
        self._wait_ready(process, url)
        with self._lock:
            self._url = url
            self._started_at = time.monotonic()

    def _discover_url(self, process: subprocess.Popen) -> str:
        """Read the child's listening line off its stdout, then keep the
        pipe drained for the rest of its life (a full pipe buffer would
        block the child)."""
        assert process.stdout is not None
        deadline = time.monotonic() + self.ready_timeout_s
        url: str | None = None
        while time.monotonic() < deadline:
            line = process.stdout.readline()
            if not line:
                break  # child exited before announcing; monitor restarts
            if line.startswith(_LISTENING_PREFIX):
                url = line[len(_LISTENING_PREFIX):].strip()
                break
        if url is None:
            raise RuntimeError(
                f"shard {self.shard_index}: worker did not announce a "
                f"listening address within {self.ready_timeout_s:.0f}s"
            )
        drain = threading.Thread(
            target=self._drain_stdout,
            args=(process,),
            name=f"bagcq-shard-{self.shard_index}-stdout",
            daemon=True,
        )
        drain.start()
        return url

    @staticmethod
    def _drain_stdout(process: subprocess.Popen) -> None:
        assert process.stdout is not None
        try:
            for _line in process.stdout:
                pass
        except (OSError, ValueError):
            pass

    def _wait_ready(self, process: subprocess.Popen, url: str) -> None:
        deadline = time.monotonic() + self.ready_timeout_s
        while time.monotonic() < deadline:
            if process.poll() is not None:
                raise RuntimeError(
                    f"shard {self.shard_index}: worker exited with "
                    f"{process.returncode} before becoming ready"
                )
            try:
                health = http_get_json(f"{url}/healthz", timeout_s=2.0)
                if health.get("status") == "ok":
                    return
            except (urllib.error.URLError, OSError, ValueError):
                pass
            time.sleep(0.05)
        raise RuntimeError(
            f"shard {self.shard_index}: worker at {url} never passed its "
            f"readiness probe"
        )

    def _counter(self, name: str, amount: int = 1) -> None:
        if self._registry is not None:
            self._registry.counter(name).inc(amount)

    def _monitor_loop(self) -> None:
        """Respawn on unexpected exit, with exponential backoff."""
        backoff = self.restart_backoff_s
        while True:
            with self._lock:
                process = self._process
            if process is None:
                return
            process.wait()
            if self._stopping:
                return
            with self._lock:
                self._url = None
                stable = (
                    self._started_at is not None
                    and time.monotonic() - self._started_at > 10.0
                )
            if stable:
                backoff = self.restart_backoff_s
            self._restarts += 1
            self._counter("shard.worker_restarts")
            time.sleep(backoff)
            backoff = min(backoff * 2, self.restart_backoff_cap_s)
            if self._stopping:
                return
            try:
                self._spawn()
            except RuntimeError:
                self._counter("shard.worker_spawn_failures")
                # Leave url=None (unroutable) and keep trying: the loop
                # waits on the possibly-dead process and backs off again.
                continue

    def stop(self, drain_timeout_s: float = 15.0) -> None:
        """Graceful drain (SIGINT), escalating to terminate then kill."""
        self._stopping = True
        with self._lock:
            process = self._process
            self._url = None
        if process is None or process.poll() is not None:
            return
        try:
            process.send_signal(signal.SIGINT)
        except (ProcessLookupError, OSError):
            return
        try:
            process.wait(timeout=drain_timeout_s)
            return
        except subprocess.TimeoutExpired:
            pass
        process.terminate()
        try:
            process.wait(timeout=5.0)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait(timeout=5.0)

    def __repr__(self) -> str:
        return (
            f"WorkerProcess(shard={self.shard_index}, url={self.url!r}, "
            f"restarts={self._restarts})"
        )
