"""The multi-process worker tier and the durable cache tier.

Two subsystems that together take the warm single-process service of
:mod:`repro.service` horizontal and restart-proof:

* :mod:`repro.shard.persist` — a disk-backed, content-addressed JSON
  store (the :mod:`repro.qa.corpus` addressing scheme) that the
  :class:`~repro.homomorphism.cache.CountCache`, the
  :class:`~repro.planner.analyze.PlanCache` profile level, and the
  :class:`~repro.containment_set.cache.ContainmentCache` write through
  to and warm-start from.  Cache keys are built on canonical components
  and content fingerprints, both stable across processes, so a snapshot
  taken by one worker restores bit-for-bit into another.

* :mod:`repro.shard.worker` / :mod:`repro.shard.router` — worker
  subprocesses (each one a full ``repro.service`` server) behind a
  consistent-hash router that keeps α-equivalent traffic on one shard
  (so per-shard single-flight coalescing and cache locality survive
  sharding) and aggregates ``/metrics``, ``/healthz``, and ``/traces``
  across the fleet.
"""

from repro.shard.persist import (
    DurableCacheStore,
    RestoreReport,
    SnapshotError,
)
from repro.shard.router import RouterConfig, ShardRouter, serve_sharded
from repro.shard.worker import WorkerProcess

__all__ = [
    "DurableCacheStore",
    "RestoreReport",
    "RouterConfig",
    "ShardRouter",
    "SnapshotError",
    "WorkerProcess",
    "serve_sharded",
]
