"""Shared naming conventions.

The paper designates two constants, rendered here as ``♠`` (spade) and
``♥`` (heart), whose distinct interpretation makes a database *non-trivial*
(Section 1.2: "Call a database D non-trivial if it contains two different
constants").  Every gadget in Section 3 and the Arena of Section 4 mention
them, so the names are fixed package-wide.
"""

from __future__ import annotations

import itertools
from typing import Iterator

__all__ = ["SPADE", "HEART", "NameSupply"]

#: Name of the first non-triviality constant (the paper's spade).
SPADE = "spade"

#: Name of the second non-triviality constant (the paper's heart).
HEART = "heart"


class NameSupply:
    """Deterministic supply of fresh names avoiding a reserved set.

    Used when renaming queries apart for the disjoint conjunction
    ``∧̄`` (Section 2.2): the variables of the right-hand operand must be
    made local, i.e. renamed away from every variable of the left-hand
    operand.

    >>> supply = NameSupply(reserved={"x", "x_1"})
    >>> supply.fresh("x")
    'x_2'
    >>> supply.fresh("x")
    'x_3'
    """

    __slots__ = ("_reserved", "_counters")

    def __init__(self, reserved: Iterator[str] | set[str] = ()) -> None:
        self._reserved: set[str] = set(reserved)
        self._counters: dict[str, itertools.count] = {}

    def reserve(self, name: str) -> None:
        self._reserved.add(name)

    def fresh(self, base: str) -> str:
        """Return an unused name derived from ``base`` and reserve it."""
        if base not in self._reserved:
            self._reserved.add(base)
            return base
        counter = self._counters.setdefault(base, itertools.count(1))
        for index in counter:
            candidate = f"{base}_{index}"
            if candidate not in self._reserved:
                self._reserved.add(candidate)
                return candidate
        raise AssertionError("unreachable: itertools.count is infinite")
