"""Structured case generators for the fuzzing loop.

Layered on :mod:`repro.workloads.random_queries` and
:func:`repro.decision.search.random_structures`: a :class:`FuzzCase`
bundles everything one oracle check needs — a query (or the disjuncts of
a UCQ, or a gadget parameter) together with a candidate database.

Two design points matter for a fuzzer that must be *reproducible*:

* **Per-case seeding.**  Case ``i`` of master seed ``s`` is generated
  from its own ``Random((s << 32) ^ i)``, so the case sequence is a pure
  function of ``(seed, index)`` — the same seed always replays the same
  cases, in any order, and a single case can be regenerated without
  re-running its predecessors.
* **Swarm testing.**  Instead of sampling every feature in every case, a
  per-case :class:`FeatureMask` switches whole feature classes
  (inequalities, constants, disconnected components) on or off.  Cases
  generated with a feature *disabled* exercise interactions the
  always-everything distribution statistically never produces
  (Groce et al., "Swarm Testing", ISSTA 2012).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Iterator, Sequence

from repro.naming import HEART, SPADE
from repro.queries.cq import ConjunctiveQuery
from repro.queries.terms import Constant
from repro.relational.schema import Schema
from repro.relational.structure import Delta, Structure
from repro.workloads.random_queries import random_query

__all__ = [
    "FeatureMask",
    "FuzzCase",
    "default_schema",
    "generate_cases",
    "case_at",
    "random_mutations",
]


def default_schema() -> Schema:
    """The fuzzing schema: one binary, one ternary, one unary relation."""
    return Schema.from_arities({"E": 2, "T": 3, "U": 1})


@dataclass(frozen=True)
class FeatureMask:
    """Which feature classes this case may use (swarm testing)."""

    inequalities: bool = True
    constants: bool = True
    disconnected: bool = True

    @classmethod
    def sample(cls, rng: random.Random) -> "FeatureMask":
        return cls(
            inequalities=rng.random() < 0.5,
            constants=rng.random() < 0.5,
            disconnected=rng.random() < 0.5,
        )


@dataclass(frozen=True)
class FuzzCase:
    """One generated instance, the unit the oracles judge.

    ``kind`` selects the payload: ``"cq"`` uses ``query``+``structure``,
    ``"ucq"`` uses ``disjuncts``+``structure``, ``"gadget"`` uses
    ``gadget_c`` (the multiplier of an :func:`~repro.core.alpha.alpha_gadget`,
    whose (=) witness is built on demand — gadgets are deterministic in
    ``c``, so the parameter *is* the instance), and ``"mutation"`` uses
    ``query``+``structure``+``mutations`` — a seeded delta sequence the
    incremental-evaluation oracle replays step by step.
    """

    kind: str
    seed: int
    index: int
    features: FeatureMask
    query: ConjunctiveQuery | None = None
    structure: Structure | None = None
    disjuncts: tuple[tuple[ConjunctiveQuery, int], ...] = ()
    gadget_c: int | None = None
    mutations: tuple[Delta, ...] = ()

    def with_query(self, query: ConjunctiveQuery) -> "FuzzCase":
        return replace(self, query=query)

    def with_structure(self, structure: Structure) -> "FuzzCase":
        return replace(self, structure=structure)

    def with_disjuncts(
        self, disjuncts: Sequence[tuple[ConjunctiveQuery, int]]
    ) -> "FuzzCase":
        return replace(self, disjuncts=tuple(disjuncts))

    def with_mutations(self, mutations: Sequence[Delta]) -> "FuzzCase":
        return replace(self, mutations=tuple(mutations))

    def describe(self) -> str:
        if self.kind == "gadget":
            return f"gadget(c={self.gadget_c})"
        if self.kind == "ucq":
            inner = " | ".join(
                f"{multiplicity}*({query})" for query, multiplicity in self.disjuncts
            )
            return f"ucq[{inner}] on {self.structure!r}"
        if self.kind == "mutation":
            steps = "; ".join(delta.describe() for delta in self.mutations)
            return (
                f"{self.query} on {self.structure!r} "
                f"under [{steps or 'no-op'}]"
            )
        return f"{self.query} on {self.structure!r}"


def _random_structure(
    rng: random.Random,
    schema: Schema,
    domain_size: int,
    density: float,
    with_constants: bool,
) -> Structure:
    facts: dict[str, set[tuple]] = {}
    domain = tuple(range(domain_size))
    for symbol in schema:
        bucket = set()
        for values in _tuples(domain, symbol.arity):
            if rng.random() < density:
                bucket.add(values)
        if bucket:
            facts[symbol.name] = bucket
    constants = {SPADE: 0, HEART: 1 % domain_size} if with_constants else {}
    return Structure(schema, facts, constants, domain)


def _tuples(domain: tuple, arity: int) -> Iterator[tuple]:
    if arity == 0:
        yield ()
        return
    for prefix in _tuples(domain, arity - 1):
        for value in domain:
            yield prefix + (value,)


def _random_cq(
    rng: random.Random, schema: Schema, features: FeatureMask
) -> ConjunctiveQuery:
    variable_count = rng.randint(2, 5)
    atom_count = rng.randint(2, 6)
    inequality_count = (
        rng.randint(1, 2) if features.inequalities and variable_count >= 2 else 0
    )
    query = random_query(
        schema,
        variable_count=variable_count,
        atom_count=atom_count,
        inequality_count=inequality_count,
        seed=rng.randrange(2**31),
    )
    if features.constants and query.variables:
        # Ground one random variable to a non-triviality constant.
        victim = sorted(query.variables)[rng.randrange(query.variable_count)]
        name = SPADE if rng.random() < 0.5 else HEART
        query = query.rename({victim: Constant(name)})
    if features.disconnected:
        # A disjoint small component: counts must factor (Lemma 1 ground).
        extra = random_query(
            schema,
            variable_count=rng.randint(1, 2),
            atom_count=rng.randint(1, 2),
            seed=rng.randrange(2**31),
        )
        query = query * extra  # disjoint_conj renames the extra part apart
    return query


def random_mutations(
    rng: random.Random, structure: Structure, steps: int
) -> tuple[Delta, ...]:
    """A seeded sequence of ``steps`` deltas applicable from ``structure``.

    Each delta mixes inserts (random tuples over the *current* domain),
    deletes (preferring facts that actually exist at that point of the
    sequence, so deletions are rarely no-ops), and occasional fresh
    domain elements — the delta stream a long-lived server would see.
    """
    deltas: list[Delta] = []
    current = structure
    fresh = (
        max(
            (e for e in structure.domain if isinstance(e, int)), default=-1
        )
        + 1
    )
    symbols = sorted(structure.schema, key=lambda s: s.name)
    for _ in range(steps):
        inserts: list[tuple[str, tuple]] = []
        deletes: list[tuple[str, tuple]] = []
        add_elements: list = []
        if rng.random() < 0.2:
            add_elements.append(fresh)
            fresh += 1
        domain = sorted(current.domain, key=repr) + add_elements
        for _ in range(rng.randint(1, 3)):
            symbol = rng.choice(symbols)
            existing = sorted(current.facts(symbol.name), key=repr)
            if existing and rng.random() < 0.5:
                deletes.append((symbol.name, rng.choice(existing)))
            else:
                values = tuple(
                    rng.choice(domain) for _ in range(symbol.arity)
                )
                inserts.append((symbol.name, values))
        delta = Delta(
            inserts=tuple(inserts),
            deletes=tuple(deletes),
            add_elements=tuple(add_elements),
        )
        deltas.append(delta)
        current = current.apply_delta(delta)
    return tuple(deltas)


def case_at(index: int, seed: int, schema: Schema | None = None) -> FuzzCase:
    """Case ``index`` of the stream for ``seed`` — a pure function.

    The size schedule widens with the index (small cases first, so early
    failures shrink fast), and every 7th/11th/13th case switches to the
    UCQ / gadget / mutation kinds to keep all oracle families exercised.
    """
    schema = schema or default_schema()
    # An explicit integer mix rather than ``Random((seed, index))`` so the
    # derivation is hash-implementation-independent.
    rng = random.Random((seed << 32) ^ index)
    features = FeatureMask.sample(rng)

    if index % 11 == 10:
        return FuzzCase(
            kind="gadget",
            seed=seed,
            index=index,
            features=features,
            gadget_c=rng.randint(2, 4),
        )

    # Size schedule: domains and densities grow slowly with the index.
    domain_size = 2 + (index // 50) % 3
    density = 0.25 + 0.15 * ((index // 10) % 3)
    structure = _random_structure(
        rng, schema, domain_size, density, features.constants
    )

    if index % 13 == 8:
        # A mutation sequence: the incremental-evaluation oracles replay
        # it delta by delta against a full recount.
        return FuzzCase(
            kind="mutation",
            seed=seed,
            index=index,
            features=features,
            query=_random_cq(rng, schema, features),
            structure=structure,
            mutations=random_mutations(rng, structure, rng.randint(3, 6)),
        )

    if index % 7 == 6:
        disjuncts = tuple(
            (_random_cq(rng, schema, features), rng.randint(1, 3))
            for _ in range(rng.randint(2, 3))
        )
        return FuzzCase(
            kind="ucq",
            seed=seed,
            index=index,
            features=features,
            disjuncts=disjuncts,
            structure=structure,
        )

    return FuzzCase(
        kind="cq",
        seed=seed,
        index=index,
        features=features,
        query=_random_cq(rng, schema, features),
        structure=structure,
    )


def generate_cases(
    count: int, seed: int = 0, schema: Schema | None = None
) -> Iterator[FuzzCase]:
    """The first ``count`` cases of the deterministic stream for ``seed``."""
    schema = schema or default_schema()
    for index in range(count):
        yield case_at(index, seed, schema)
