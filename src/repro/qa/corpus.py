"""JSON corpus of minimized findings and interesting seeds, with replay.

Every minimized failure the fuzzer ever produced — and every curated
"near-miss" seed — is persisted as one small JSON file, encoded with the
stable serializers of :mod:`repro.io`.  ``tests/test_corpus_replay.py``
replays the whole corpus through every applicable oracle on every run,
so a finding, once fixed, can never regress silently.

An entry is self-describing::

    {
      "kind": "cq" | "ucq" | "gadget" | "mutation",
      "oracle": "cross_engine" | null,       # which oracle it failed (if any)
      "note": "free-form provenance",
      "seed": 17, "index": 205,              # generator coordinates
      "query": {...},                        # repro.io query payload (cq/mutation)
      "disjuncts": [{"query": ..., "multiplicity": n}, ...],   # (ucq)
      "gadget_c": 3,                         # (gadget)
      "mutations": [{...}, ...],             # repro.io delta payloads (mutation)
      "structure": {...}                     # repro.io structure payload
    }

File names are content-addressed (a SHA-256 prefix of the canonical
JSON), so re-finding the same minimized instance is idempotent and the
corpus never duplicates.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Iterator, Sequence

from repro.errors import BagCQError
from repro.io import (
    delta_from_dict,
    delta_to_dict,
    query_from_dict,
    query_to_dict,
    structure_from_dict,
    structure_to_dict,
)
from repro.qa.generators import FeatureMask, FuzzCase

__all__ = [
    "CorpusError",
    "case_from_entry",
    "entry_from_case",
    "load_corpus",
    "replay_corpus",
    "write_finding",
]


class CorpusError(BagCQError):
    """A corpus entry cannot be encoded or decoded."""


def entry_from_case(
    case: FuzzCase, oracle_name: str | None = None, note: str = ""
) -> dict:
    """The JSON-ready dict for one case (plus provenance)."""
    entry: dict = {
        "kind": case.kind,
        "oracle": oracle_name,
        "note": note,
        "seed": case.seed,
        "index": case.index,
    }
    if case.kind == "cq":
        entry["query"] = query_to_dict(case.query)
    elif case.kind == "mutation":
        entry["query"] = query_to_dict(case.query)
        entry["mutations"] = [delta_to_dict(delta) for delta in case.mutations]
    elif case.kind == "ucq":
        entry["disjuncts"] = [
            {"query": query_to_dict(query), "multiplicity": multiplicity}
            for query, multiplicity in case.disjuncts
        ]
    elif case.kind == "gadget":
        entry["gadget_c"] = case.gadget_c
    else:
        raise CorpusError(f"unknown case kind {case.kind!r}")
    if case.structure is not None:
        entry["structure"] = structure_to_dict(case.structure)
    return entry


def case_from_entry(entry: dict) -> FuzzCase:
    """Inverse of :func:`entry_from_case`."""
    try:
        kind = entry["kind"]
        structure = (
            structure_from_dict(entry["structure"])
            if "structure" in entry
            else None
        )
        case = FuzzCase(
            kind=kind,
            seed=int(entry.get("seed", 0)),
            index=int(entry.get("index", 0)),
            features=FeatureMask(),
            structure=structure,
        )
        if kind == "cq":
            return case.with_query(query_from_dict(entry["query"]))
        if kind == "mutation":
            return case.with_query(
                query_from_dict(entry["query"])
            ).with_mutations(
                [delta_from_dict(delta) for delta in entry["mutations"]]
            )
        if kind == "ucq":
            return case.with_disjuncts(
                [
                    (
                        query_from_dict(disjunct["query"]),
                        int(disjunct["multiplicity"]),
                    )
                    for disjunct in entry["disjuncts"]
                ]
            )
        if kind == "gadget":
            return FuzzCase(
                kind="gadget",
                seed=int(entry.get("seed", 0)),
                index=int(entry.get("index", 0)),
                features=FeatureMask(),
                gadget_c=int(entry["gadget_c"]),
            )
    except (KeyError, TypeError, ValueError) as error:
        raise CorpusError(f"malformed corpus entry: {error}") from error
    raise CorpusError(f"unknown corpus entry kind {kind!r}")


def _entry_digest(entry: dict) -> str:
    canonical = json.dumps(
        {key: value for key, value in entry.items() if key != "note"},
        sort_keys=True,
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def write_finding(
    directory: str | Path,
    case: FuzzCase,
    oracle_name: str | None = None,
    note: str = "",
) -> Path:
    """Persist one (minimized) case; returns the content-addressed path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    entry = entry_from_case(case, oracle_name, note)
    stem = oracle_name or "seed"
    path = directory / f"{stem}-{_entry_digest(entry)}.json"
    path.write_text(json.dumps(entry, indent=2, sort_keys=True) + "\n")
    return path


def load_corpus(directory: str | Path) -> Iterator[tuple[Path, dict, FuzzCase]]:
    """Yield ``(path, entry, case)`` for every ``*.json`` in ``directory``."""
    directory = Path(directory)
    if not directory.is_dir():
        return
    for path in sorted(directory.glob("*.json")):
        try:
            entry = json.loads(path.read_text())
        except json.JSONDecodeError as error:
            raise CorpusError(f"{path}: invalid JSON: {error}") from error
        yield path, entry, case_from_entry(entry)


def replay_corpus(
    directory: str | Path, oracles: Sequence | None = None
) -> list[tuple[Path, str, "object"]]:
    """Re-judge every corpus entry; returns the failing triples.

    Each element is ``(path, oracle_name, OracleResult)`` for a check
    that does **not** pass — an empty list means the corpus is clean.
    """
    from repro.qa.oracles import all_oracles

    chosen = tuple(oracles) if oracles is not None else all_oracles()
    failures = []
    for path, _, case in load_corpus(directory):
        for orc in chosen:
            if not orc.applies(case):
                continue
            result = orc.judge(case)
            if not result.ok:
                failures.append((path, orc.name, result))
    return failures
