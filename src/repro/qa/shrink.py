"""Delta-debugging minimizer for failing fuzz cases.

Given a case and a predicate (``still_failing(case) -> bool``), the
shrinker greedily applies single-step reductions and keeps every step on
which the predicate still holds, until no single step preserves the
failure — the result is *1-minimal* in the classic delta-debugging sense
(Zeller & Hildebrandt, "Simplifying and Isolating Failure-Inducing
Input").  A 40-atom query over a 60-fact database routinely lands in the
bug report as a 3-atom query over a handful of facts.

Reduction steps, tried in order of expected payoff:

1. drop a query atom;
2. drop a query inequality;
3. drop a disjunct (UCQ cases) or decrement its multiplicity to 1;
4. drop a database fact;
5. merge one query variable into another (shrinks the variable count,
   which atom/fact dropping alone cannot do);
6. drop an unused domain element;
7. drop a whole delta from a mutation sequence, or a single
   insert/delete/element mutation inside one (mutation cases).

Every predicate evaluation is counted; the fuzzer mirrors the total into
the ``qa.shrink_steps`` counter.  Gadget cases are parameterized by a
single integer, so they are already minimal and are returned unchanged.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.qa.generators import FuzzCase
from repro.queries.cq import ConjunctiveQuery
from repro.relational.structure import Delta, Structure

__all__ = ["shrink_case"]

#: Safety valve: a shrink never evaluates the predicate more than this.
MAX_PREDICATE_CALLS = 10_000


def _query_reductions(query: ConjunctiveQuery) -> Iterator[ConjunctiveQuery]:
    """Every single-step reduction of ``query``."""
    atoms = query.atoms
    inequalities = query.inequalities
    for index in range(len(atoms)):
        yield ConjunctiveQuery(
            atoms[:index] + atoms[index + 1 :], inequalities
        )
    for index in range(len(inequalities)):
        yield ConjunctiveQuery(
            atoms, inequalities[:index] + inequalities[index + 1 :]
        )
    variables = sorted(query.variables)
    for victim in variables:
        for target in variables:
            if victim < target:
                yield query.rename({victim: target})


def _structure_reductions(structure: Structure) -> Iterator[Structure]:
    """Every single-step reduction of ``structure``."""
    for relation, values in structure.all_facts():
        yield structure.without_fact(relation, values)
    interpreted = set(structure.constants.values())
    active = set(interpreted)
    for _, values in structure.all_facts():
        active.update(values)
    for element in sorted(structure.domain - frozenset(active), key=repr):
        yield Structure(
            structure.schema,
            {name: structure.facts(name) for name in structure.schema.relation_names},
            structure.constants,
            structure.domain - {element},
        )


def _delta_reductions(delta: Delta) -> Iterator[Delta]:
    """Every single-step reduction of one delta (drop one mutation)."""
    for index in range(len(delta.inserts)):
        yield Delta(
            delta.inserts[:index] + delta.inserts[index + 1 :],
            delta.deletes,
            delta.add_elements,
            delta.remove_elements,
        )
    for index in range(len(delta.deletes)):
        yield Delta(
            delta.inserts,
            delta.deletes[:index] + delta.deletes[index + 1 :],
            delta.add_elements,
            delta.remove_elements,
        )
    for index in range(len(delta.add_elements)):
        yield Delta(
            delta.inserts,
            delta.deletes,
            delta.add_elements[:index] + delta.add_elements[index + 1 :],
            delta.remove_elements,
        )
    for index in range(len(delta.remove_elements)):
        yield Delta(
            delta.inserts,
            delta.deletes,
            delta.add_elements,
            delta.remove_elements[:index] + delta.remove_elements[index + 1 :],
        )


def _case_reductions(case: FuzzCase) -> Iterator[FuzzCase]:
    if case.kind in ("cq", "mutation"):
        for query in _query_reductions(case.query):
            yield case.with_query(query)
    if case.kind == "mutation":
        mutations = case.mutations
        for index in range(len(mutations)):
            yield case.with_mutations(
                mutations[:index] + mutations[index + 1 :]
            )
        for index, delta in enumerate(mutations):
            for reduced in _delta_reductions(delta):
                yield case.with_mutations(
                    mutations[:index] + (reduced,) + mutations[index + 1 :]
                )
    elif case.kind == "ucq":
        disjuncts = case.disjuncts
        for index in range(len(disjuncts)):
            if len(disjuncts) > 1:
                yield case.with_disjuncts(
                    disjuncts[:index] + disjuncts[index + 1 :]
                )
        for index, (query, multiplicity) in enumerate(disjuncts):
            if multiplicity > 1:
                yield case.with_disjuncts(
                    disjuncts[:index]
                    + ((query, 1),)
                    + disjuncts[index + 1 :]
                )
            for reduced in _query_reductions(query):
                yield case.with_disjuncts(
                    disjuncts[:index]
                    + ((reduced, multiplicity),)
                    + disjuncts[index + 1 :]
                )
    if case.structure is not None:
        for structure in _structure_reductions(case.structure):
            yield case.with_structure(structure)


def shrink_case(
    case: FuzzCase,
    still_failing: Callable[[FuzzCase], bool],
    max_steps: int = MAX_PREDICATE_CALLS,
) -> tuple[FuzzCase, int]:
    """Greedily 1-minimize ``case`` under ``still_failing``.

    Returns ``(minimized_case, predicate_evaluations)``.  The input case
    is assumed to fail; the result is guaranteed to fail and to be
    1-minimal (up to ``max_steps``): no single reduction step of the
    result still fails.
    """
    steps = 0
    if case.kind == "gadget":
        return case, steps
    current = case
    improved = True
    while improved and steps < max_steps:
        improved = False
        for candidate in _case_reductions(current):
            if steps >= max_steps:
                break
            steps += 1
            if still_failing(candidate):
                current = candidate
                improved = True
                break  # restart the scan from the smaller case
    return current, steps
