"""The oracle registry: named exact-count predicates over fuzz cases.

An oracle is a *predicate that must hold on every generated instance*.
Because the paper's lemmas are exact count identities, each oracle has a
crisp failure criterion — two numbers that must be equal and are not.
Registered oracles (``bagcq fuzz --oracle NAME`` selects a subset):

``cross_engine``
    The homomorphism engines and the planner-driven ``auto`` engine
    agree (``acyclic`` only where it is applicable: inequality-free,
    acyclic components; ``compiled`` on *every* case — it is total,
    falling back to the interpreter outside its envelope, so the arm
    also exercises the fallback's parity).
``batch_parity``
    :func:`repro.homomorphism.batch.count_many` — with a private cache,
    with caching disabled, and with a tiny shared LRU — is bit-identical
    to serial :func:`repro.homomorphism.engine.count`.
``count_at_least``
    ``count_at_least(φ, D, b) ⟺ φ(D) ≥ b`` around the exact value,
    including through the factorized :class:`QueryProduct` path.
``multiplicativity``
    Lemma 1 / Definition 2: ``(φ ∧̄ ψ)(D) = φ(D)·ψ(D)`` and
    ``(φ↑k)(D) = φ(D)^k``.
``invariance``
    ``φ(D)`` is invariant under bijective variable renaming and atom
    reordering (the cache canonicalization must respect both).
``ucq_linearity``
    ``Σ mᵢ·φᵢ(D)`` — the UCQ value — matches serial and batched/cached
    evaluation of :func:`~repro.homomorphism.engine.count_ucq`.
``bag_vs_set``
    The set-semantics bridge: derived pairs with known positive verdicts
    hold; a negative Chandra–Merlin verdict's certificate is a genuine
    bag counterexample (and the search prescreen uses it); a positive
    verdict is never contradicted by a fuzzed structure or a search
    counterexample; all engines agree on verdicts and witnesses.
``delta_vs_full``
    Incremental (delta) evaluation is bit-identical to a full recount
    after **every** step of a seeded mutation sequence, across the
    serial, cached, batched, compiled, and service paths — and the
    incrementally maintained fingerprints match recomputed ones.
``gadget_equality``
    Definition 3 ``(=)``: the α multiplication gadget for ``c`` attains
    ``α_s(D) = c·α_b(D) ≠ 0`` on its packaged witness.

To add an oracle, decorate a ``check(case) -> OracleResult`` function
with ``@oracle("name", kinds=(...))`` here (or in any imported module);
the fuzzer, the corpus replayer, and the CLI pick it up automatically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.homomorphism.acyclic import is_acyclic
from repro.homomorphism.batch import count_many
from repro.homomorphism.cache import CountCache
from repro.homomorphism.engine import count, count_at_least, count_ucq
from repro.qa.generators import FuzzCase
from repro.queries.cq import ConjunctiveQuery
from repro.queries.product import QueryProduct
from repro.queries.terms import Variable
from repro.queries.ucq import UnionOfConjunctiveQueries
from repro.workloads.random_queries import path_query

__all__ = [
    "Oracle",
    "OracleResult",
    "all_oracles",
    "get_oracle",
    "oracle",
    "oracle_names",
]


@dataclass(frozen=True)
class OracleResult:
    """Verdict of one oracle on one case."""

    ok: bool
    details: str = ""

    @classmethod
    def passed(cls) -> "OracleResult":
        return cls(True)

    @classmethod
    def failed(cls, details: str) -> "OracleResult":
        return cls(False, details)


@dataclass(frozen=True)
class Oracle:
    """A named predicate over fuzz cases of the given ``kinds``."""

    name: str
    kinds: tuple[str, ...]
    check: Callable[[FuzzCase], OracleResult]
    doc: str = ""

    def applies(self, case: FuzzCase) -> bool:
        return case.kind in self.kinds

    def judge(self, case: FuzzCase) -> OracleResult:
        """Run the check; an exception is itself a failure (with detail)."""
        if not self.applies(case):
            return OracleResult.passed()
        try:
            return self.check(case)
        except Exception as error:  # noqa: BLE001 — a crash is a finding
            return OracleResult.failed(
                f"oracle raised {type(error).__name__}: {error}"
            )


_REGISTRY: dict[str, Oracle] = {}


def oracle(name: str, kinds: Iterable[str] = ("cq",)):
    """Register ``check`` under ``name`` for cases of the given kinds."""

    def register(check: Callable[[FuzzCase], OracleResult]):
        if name in _REGISTRY:
            raise ValueError(f"oracle {name!r} already registered")
        _REGISTRY[name] = Oracle(
            name=name,
            kinds=tuple(kinds),
            check=check,
            doc=(check.__doc__ or "").strip().splitlines()[0]
            if check.__doc__
            else "",
        )
        return check

    return register


def all_oracles() -> tuple[Oracle, ...]:
    """Every registered oracle, in registration (= documentation) order."""
    return tuple(_REGISTRY.values())


def oracle_names() -> tuple[str, ...]:
    return tuple(_REGISTRY)


def get_oracle(name: str) -> Oracle:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown oracle {name!r}; choose from {sorted(_REGISTRY)}"
        ) from None


# -- the oracles -----------------------------------------------------------


@oracle("cross_engine")
def _cross_engine(case: FuzzCase) -> OracleResult:
    """backtracking, treewidth, compiled, auto (acyclic where applicable) agree."""
    reference = count(case.query, case.structure, engine="backtracking")
    via_td = count(case.query, case.structure, engine="treewidth")
    if via_td != reference:
        return OracleResult.failed(
            f"backtracking={reference} treewidth={via_td}"
        )
    via_compiled = count(case.query, case.structure, engine="compiled")
    if via_compiled != reference:
        return OracleResult.failed(
            f"backtracking={reference} compiled={via_compiled}"
        )
    via_auto = count(case.query, case.structure, engine="auto")
    if via_auto != reference:
        return OracleResult.failed(
            f"backtracking={reference} auto={via_auto}"
        )
    if not case.query.has_inequalities() and all(
        is_acyclic(component)
        for component in case.query.connected_components()
    ):
        via_ac = count(case.query, case.structure, engine="acyclic")
        if via_ac != reference:
            return OracleResult.failed(
                f"backtracking={reference} acyclic={via_ac}"
            )
    if case.query.has_inequalities():
        via_ie = count(
            case.query,
            case.structure,
            engine="backtracking",
            use_inclusion_exclusion=True,
        )
        if via_ie != reference:
            return OracleResult.failed(
                f"backtracking={reference} inclusion_exclusion={via_ie}"
            )
    return OracleResult.passed()


@oracle("batch_parity")
def _batch_parity(case: FuzzCase) -> OracleResult:
    """count_many (fresh cache / no cache / tiny LRU) ≡ serial count."""
    serial = count(case.query, case.structure)
    pairs = [(case.query, case.structure)] * 3
    for cache in (None, False, CountCache(max_entries=2)):
        batched = count_many(pairs, cache=cache)
        if batched != [serial] * 3:
            return OracleResult.failed(
                f"serial={serial} batched={batched} cache={cache!r}"
            )
    return OracleResult.passed()


@oracle("count_at_least")
def _count_at_least(case: FuzzCase) -> OracleResult:
    """count_at_least(φ, D, b) ⟺ φ(D) ≥ b, plain and factorized."""
    value = count(case.query, case.structure)
    product = QueryProduct.of(case.query, 2)
    checks = [
        (case.query, 0, True),
        (case.query, value, True),
        (case.query, value + 1, False),
        (product, value * value, True),
        (product, value * value + 1, False),
    ]
    for query, bound, expected in checks:
        got = count_at_least(query, case.structure, bound)
        if got is not expected:
            return OracleResult.failed(
                f"count={value} bound={bound} expected={expected} got={got}"
            )
    return OracleResult.passed()


@oracle("multiplicativity")
def _multiplicativity(case: FuzzCase) -> OracleResult:
    """Lemma 1: (φ ∧̄ ψ)(D) = φ(D)·ψ(D); Definition 2: (φ↑k)(D) = φ(D)^k."""
    structure = case.structure
    value = count(case.query, structure)
    binary = sorted(
        symbol.name for symbol in structure.schema if symbol.arity == 2
    )
    if binary:
        other = path_query(2, relation=binary[0])
        conj = case.query * other
        expected = value * count(other, structure)
        got = count(conj, structure)
        if got != expected:
            return OracleResult.failed(
                f"(phi ∧̄ psi)(D)={got} but phi(D)*psi(D)={expected}"
            )
    squared = count(case.query.power(2), structure)
    if squared != value * value:
        return OracleResult.failed(
            f"(phi↑2)(D)={squared} but phi(D)^2={value * value}"
        )
    lazy = count(QueryProduct.of(case.query, 3), structure)
    if lazy != value**3:
        return OracleResult.failed(
            f"QueryProduct(phi,3)(D)={lazy} but phi(D)^3={value**3}"
        )
    return OracleResult.passed()


@oracle("invariance")
def _invariance(case: FuzzCase) -> OracleResult:
    """φ(D) is invariant under variable renaming and atom reordering."""
    reference = count(case.query, case.structure)
    mapping = {
        variable: Variable(f"zz_{position}")
        for position, variable in enumerate(sorted(case.query.variables))
    }
    renamed = case.query.rename(mapping)
    via_renamed = count(renamed, case.structure)
    if via_renamed != reference:
        return OracleResult.failed(
            f"original={reference} renamed={via_renamed}"
        )
    reordered = ConjunctiveQuery(
        tuple(reversed(case.query.atoms)),
        tuple(reversed(case.query.inequalities)),
    )
    via_reordered = count(reordered, case.structure)
    if via_reordered != reference:
        return OracleResult.failed(
            f"original={reference} reordered={via_reordered}"
        )
    return OracleResult.passed()


@oracle("ucq_linearity", kinds=("ucq",))
def _ucq_linearity(case: FuzzCase) -> OracleResult:
    """UCQ value = Σ mᵢ·φᵢ(D), serial and batched/cached alike."""
    ucq = UnionOfConjunctiveQueries(case.disjuncts)
    expected = sum(
        multiplicity * count(query, case.structure)
        for query, multiplicity in case.disjuncts
    )
    serial = count_ucq(ucq, case.structure)
    if serial != expected:
        return OracleResult.failed(f"sum={expected} count_ucq={serial}")
    cached = count_ucq(ucq, case.structure, cache=CountCache())
    if cached != expected:
        return OracleResult.failed(f"sum={expected} cached={cached}")
    return OracleResult.passed()


@oracle("bag_vs_set", kinds=("cq", "ucq"))
def _bag_vs_set(case: FuzzCase) -> OracleResult:
    """Set containment is necessary for bag containment, never contradicted.

    From each case a family of query pairs is derived (drop-an-atom
    weakenings, α-renamings) and three properties are enforced:

    * *Expected positives*: ``Q ⊆ Q``, ``Q ⊆ Q-minus-an-atom``, and both
      directions of an α-renaming are set-contained.
    * *Bridge*: a negative set verdict's certificate is a genuine bag
      counterexample — ``Q1`` counts positive, ``Q2`` counts zero on it —
      and the counterexample search refutes the pair without evaluating
      a single candidate (the prescreen).
    * *Non-contradiction*: when the set verdict is positive, no database
      (fuzzed or searched) has ``Q1`` positive and ``Q2`` zero; a found
      bag violation must be a multiplicity gap, not a boolean one.

    Verdicts must agree across backtracking/treewidth/compiled/auto,
    witnesses included.
    """
    from repro.containment_set import cq_containment, cq_contained, ucq_contained
    from repro.decision.search import find_counterexample

    if case.kind == "ucq":
        disjuncts = [query.without_inequalities() for query, _ in case.disjuncts]
        union = disjuncts
        widened = disjuncts + [path_query(2)]
        if not ucq_contained(union, widened):
            return OracleResult.failed("U ⊄ U ∪ {path} (monotonicity)")
        if not ucq_contained([disjuncts[0]], union):
            return OracleResult.failed("q0 ⊄ union containing q0")
        return OracleResult.passed()

    base = case.query.without_inequalities()
    renamed = base.rename(
        {
            variable: Variable(f"bvs_{position}")
            for position, variable in enumerate(sorted(base.variables))
        }
    )
    weakened = ConjunctiveQuery(base.atoms[:-1]) if base.atom_count > 1 else base
    if not base.constants <= weakened.constants:
        # Dropping the atom dropped a constant, so the reverse direction
        # would (correctly) raise ConstantError on canonical(weakened);
        # fall back to the identity pair.
        weakened = base
    for phi_s, phi_b, label in (
        (base, base, "Q ⊆ Q"),
        (base, weakened, "Q ⊆ weakened(Q)"),
        (base, renamed, "Q ⊆ α(Q)"),
        (renamed, base, "α(Q) ⊆ Q"),
    ):
        if not cq_contained(phi_s, phi_b):
            return OracleResult.failed(f"expected positive failed: {label}")

    # The interesting direction can go either way; all engines must agree
    # on it, witness and certificate included.
    reference = cq_containment(weakened, base, engine="backtracking")
    for engine in ("treewidth", "compiled", "auto"):
        other = cq_containment(weakened, base, engine=engine)
        if other.contained is not reference.contained:
            return OracleResult.failed(
                f"verdict disagrees: backtracking={reference.contained} "
                f"{engine}={other.contained}"
            )
        if other.witness != reference.witness:
            return OracleResult.failed(f"witness differs under {engine}")

    if not reference.contained:
        certificate = reference.certificate
        lhs = count(weakened, certificate.structure)
        rhs = count(base, certificate.structure)
        if lhs < 1 or rhs != 0:
            return OracleResult.failed(
                f"certificate not a bag counterexample: lhs={lhs} rhs={rhs}"
            )
        prescreened = find_counterexample(weakened, base, [])
        if not prescreened.found or prescreened.checked != 0:
            return OracleResult.failed(
                "prescreen missed a set-refuted pair "
                f"(found={prescreened.found} checked={prescreened.checked})"
            )
    else:
        # Positive set verdict: Q1 positive forces Q2 positive on the
        # fuzzed structure, and any bag violation the search reports must
        # keep Q2 positive (a multiplicity gap, never a boolean one).
        if count(weakened, case.structure) > 0 and count(base, case.structure) == 0:
            return OracleResult.failed(
                "fuzzed structure contradicts positive set verdict"
            )
        outcome = find_counterexample(weakened, base, [case.structure])
        if outcome.found and count(base, outcome.counterexample) == 0:
            return OracleResult.failed(
                "search counterexample contradicts positive set verdict"
            )
    return OracleResult.passed()


@oracle("delta_vs_full", kinds=("mutation",))
def _delta_vs_full(case: FuzzCase) -> OracleResult:
    """Incremental evaluation after every delta ≡ full recount from scratch.

    Replays the case's mutation sequence four ways in lockstep and
    demands bit-identical counts after *every* step:

    * **serial** — a cold ``count`` with the backtracking engine on an
      independently maintained structure (the ground truth);
    * **cached/incremental** — a :class:`~repro.homomorphism.delta.DeltaEvaluator`
      whose cache is migrated/evicted by fingerprints, plus the compiled
      engine on the evolved structure;
    * **batched** — :func:`~repro.homomorphism.batch.count_many` with a
      fresh cache;
    * **service** — the transport-free ``/db``/``/update``/``/evaluate``
      handlers over a :class:`~repro.service.databases.DatabaseRegistry`.

    Fingerprint soundness rides along: after each step the incrementally
    maintained fingerprint vector must equal that of a structure rebuilt
    from scratch.  A mutation made inapplicable by shrinking (e.g. its
    base facts were dropped) raises ``SchemaError`` identically on every
    path and passes vacuously.
    """
    from repro.errors import SchemaError
    from repro.homomorphism.delta import DeltaEvaluator
    from repro.io import delta_to_dict, query_to_dict, structure_to_dict
    from repro.relational.structure import Structure
    from repro.service.databases import DatabaseRegistry
    from repro.service.handlers import parse_db, parse_evaluate, parse_update

    evaluator = DeltaEvaluator(
        case.structure, engine="auto", cache=CountCache()
    )
    registry = DatabaseRegistry(CountCache())
    parse_db(
        {"name": "fuzz", "structure": structure_to_dict(case.structure)},
        None,
        registry,
    ).run()
    query_payload = query_to_dict(case.query)
    full = case.structure
    for step, delta in enumerate(case.mutations):
        try:
            full = full.apply_delta(delta)
        except SchemaError:
            return OracleResult.passed()  # shrunk-invalid; vacuous
        evaluator.apply(delta)
        parse_update(
            {"db": "fuzz", "delta": delta_to_dict(delta)}, None, registry
        ).run()
        rebuilt = Structure(
            full.schema,
            {name: full.facts(name) for name in full.schema.relation_names},
            full.constants,
            full.domain,
        )
        if evaluator.structure != full:
            return OracleResult.failed(
                f"step {step}: incremental structure diverged from "
                f"independently applied delta"
            )
        if (
            evaluator.structure.fingerprint_vector()
            != rebuilt.fingerprint_vector()
        ):
            return OracleResult.failed(
                f"step {step}: incremental fingerprints != recomputed"
            )
        cold = count(case.query, rebuilt, engine="backtracking")
        incremental = evaluator.evaluate(case.query)
        if incremental != cold:
            return OracleResult.failed(
                f"step {step}: incremental={incremental} cold={cold}"
            )
        batched = count_many([(case.query, full)], cache=CountCache())[0]
        if batched != cold:
            return OracleResult.failed(
                f"step {step}: batched={batched} cold={cold}"
            )
        via_compiled = count(case.query, full, engine="compiled")
        if via_compiled != cold:
            return OracleResult.failed(
                f"step {step}: compiled={via_compiled} cold={cold}"
            )
        via_service = parse_evaluate(
            {"query": query_payload, "db": "fuzz"}, CountCache(), registry
        ).run()["count"]
        if via_service != cold:
            return OracleResult.failed(
                f"step {step}: service={via_service} cold={cold}"
            )
    return OracleResult.passed()


@oracle("gadget_equality", kinds=("gadget",))
def _gadget_equality(case: FuzzCase) -> OracleResult:
    """Definition 3 (=): α_s(D) = c·α_b(D) ≠ 0 on the gadget's witness."""
    from repro.core.alpha import alpha_gadget

    gadget = alpha_gadget(case.gadget_c)
    if not gadget.verify_equality():
        value_s, value_b = gadget.witness_counts()
        return OracleResult.failed(
            f"alpha_s(W)={value_s} alpha_b(W)={value_b} "
            f"ratio should be {case.gadget_c}"
        )
    return OracleResult.passed()
