"""The budgeted fuzzing driver behind ``bagcq fuzz``.

:func:`run_fuzz` walks the deterministic case stream of
:mod:`repro.qa.generators`, judges every case with every applicable
oracle, and — on a failure — delta-debugs the case down to a 1-minimal
counterexample, optionally persisting it into a corpus directory.

Observability (under an active :func:`repro.obs.observe` scope):

* ``qa.cases`` — cases generated and judged;
* ``qa.checks`` — individual oracle evaluations;
* ``qa.failures`` — failing (case, oracle) pairs found;
* ``qa.shrink_steps`` — predicate evaluations spent minimizing;
* ``qa.replayed`` / ``qa.replay_failures`` — corpus replay totals;
* a ``qa.oracle.<name>`` span per oracle evaluation.

With a fixed ``seed`` and ``max_cases`` (and no wall-clock budget) the
whole run is deterministic: same case sequence, same verdicts, same
counter values.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.obs import metrics as obs_metrics
from repro.obs.trace import span
from repro.qa.corpus import write_finding
from repro.qa.generators import FuzzCase, case_at, default_schema
from repro.qa.oracles import Oracle, OracleResult, all_oracles, get_oracle
from repro.qa.shrink import shrink_case
from repro.relational.schema import Schema

__all__ = ["FuzzFinding", "FuzzReport", "run_fuzz"]

#: Default case budget when neither ``max_cases`` nor a time budget is given.
DEFAULT_MAX_CASES = 500


@dataclass(frozen=True)
class FuzzFinding:
    """One failing (case, oracle) pair, with its minimized form."""

    oracle: str
    case: FuzzCase
    minimized: FuzzCase
    result: OracleResult
    shrink_steps: int
    corpus_path: Path | None = None

    def describe(self) -> str:
        return (
            f"[{self.oracle}] case #{self.case.index} (seed {self.case.seed}): "
            f"{self.result.details}\n  minimized: {self.minimized.describe()}"
        )


@dataclass
class FuzzReport:
    """Outcome of one :func:`run_fuzz` invocation."""

    seed: int
    cases: int = 0
    checks: int = 0
    shrink_steps: int = 0
    replayed: int = 0
    findings: list[FuzzFinding] = field(default_factory=list)
    replay_failures: list = field(default_factory=list)
    per_oracle: dict[str, int] = field(default_factory=dict)
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.findings and not self.replay_failures

    def describe(self) -> str:
        lines = [
            f"fuzz: seed={self.seed} cases={self.cases} checks={self.checks} "
            f"failures={len(self.findings)} "
            f"shrink_steps={self.shrink_steps} "
            f"elapsed={self.elapsed_seconds:.2f}s"
        ]
        for name in sorted(self.per_oracle):
            lines.append(f"  oracle {name:<18} {self.per_oracle[name]} checks")
        if self.replayed:
            lines.append(
                f"  corpus replay: {self.replayed} entries, "
                f"{len(self.replay_failures)} failures"
            )
        for finding in self.findings:
            lines.append(finding.describe())
        for path, oracle_name, result in self.replay_failures:
            lines.append(f"[replay:{oracle_name}] {path}: {result.details}")
        return "\n".join(lines)


def _resolve_oracles(names: Sequence[str] | None) -> tuple[Oracle, ...]:
    if names is None:
        return all_oracles()
    return tuple(get_oracle(name) for name in names)


def run_fuzz(
    max_cases: int | None = None,
    budget_seconds: float | None = None,
    seed: int = 0,
    oracles: Sequence[str] | None = None,
    corpus_dir: str | Path | None = None,
    schema: Schema | None = None,
    shrink: bool = True,
    max_findings: int = 25,
) -> FuzzReport:
    """Fuzz until the case or time budget is exhausted.

    ``oracles`` selects a subset by name (default: all registered).
    ``corpus_dir`` does double duty: existing entries are *replayed*
    before fuzzing (regressions fail fast), and new minimized findings
    are written back to it.  ``max_findings`` stops a catastrophically
    broken build from shrinking thousands of duplicates.
    """
    if max_cases is None and budget_seconds is None:
        max_cases = DEFAULT_MAX_CASES
    chosen = _resolve_oracles(oracles)
    schema = schema or default_schema()
    report = FuzzReport(seed=seed)
    report.per_oracle = {oracle.name: 0 for oracle in chosen}
    # Pre-register every counter at zero so a clean run's report still
    # shows qa.failures/qa.shrink_steps explicitly (and stays comparable
    # across runs that do and don't find anything).
    for name in ("qa.cases", "qa.checks", "qa.failures", "qa.shrink_steps"):
        obs_metrics.add(name, 0)
    # The cross_engine oracle exercises engine="auto", whose profile cache
    # is process-wide; start it cold so the counter trace stays a pure
    # function of (seed, max_cases) across repeated runs.
    from repro.containment_set import default_containment_cache
    from repro.planner import default_plan_cache

    default_plan_cache().clear()
    default_containment_cache().clear()
    started = time.monotonic()

    if corpus_dir is not None:
        from repro.qa.corpus import load_corpus

        for path, _, entry_case in load_corpus(corpus_dir):
            report.replayed += 1
            for oracle in chosen:
                if not oracle.applies(entry_case):
                    continue
                with span(f"qa.replay.{oracle.name}"):
                    result = oracle.judge(entry_case)
                if not result.ok:
                    report.replay_failures.append((path, oracle.name, result))
        obs_metrics.add("qa.replayed", report.replayed)
        if report.replay_failures:
            obs_metrics.add("qa.replay_failures", len(report.replay_failures))

    index = 0
    while True:
        if max_cases is not None and index >= max_cases:
            break
        if (
            budget_seconds is not None
            and time.monotonic() - started >= budget_seconds
        ):
            break
        if len(report.findings) >= max_findings:
            break
        case = case_at(index, seed, schema)
        index += 1
        report.cases += 1
        obs_metrics.add("qa.cases")
        for oracle in chosen:
            if not oracle.applies(case):
                continue
            report.checks += 1
            report.per_oracle[oracle.name] += 1
            obs_metrics.add("qa.checks")
            with span(f"qa.oracle.{oracle.name}", case=case.index):
                result = oracle.judge(case)
            if result.ok:
                continue
            obs_metrics.add("qa.failures")
            finding = _handle_failure(
                case, oracle, result, corpus_dir, shrink
            )
            report.shrink_steps += finding.shrink_steps
            report.findings.append(finding)
    report.elapsed_seconds = time.monotonic() - started
    return report


def _handle_failure(
    case: FuzzCase,
    oracle: Oracle,
    result: OracleResult,
    corpus_dir: str | Path | None,
    shrink: bool,
) -> FuzzFinding:
    minimized, steps = case, 0
    if shrink:
        with span(f"qa.shrink.{oracle.name}", case=case.index):
            minimized, steps = shrink_case(
                case, lambda candidate: not oracle.judge(candidate).ok
            )
        obs_metrics.add("qa.shrink_steps", steps)
    corpus_path = None
    if corpus_dir is not None:
        corpus_path = write_finding(
            corpus_dir,
            minimized,
            oracle_name=oracle.name,
            note=f"minimized from case #{case.index} (seed {case.seed}): "
            f"{result.details}",
        )
    return FuzzFinding(
        oracle=oracle.name,
        case=case,
        minimized=minimized,
        result=result,
        shrink_steps=steps,
        corpus_path=corpus_path,
    )
