"""``repro.qa`` — differential fuzzing with paper-lemma oracles.

Every identity this reproduction certifies is an *exact count* identity,
which makes the codebase oracle-rich: the three homomorphism engines must
agree everywhere, cached/batched evaluation must be bit-identical to
serial evaluation, and Lemma 1 / Definition 2 / Definition 3 pin the
algebra.  This package turns those facts into a reusable fuzzing loop:

* :mod:`repro.qa.generators` — seeded, swarm-masked streams of
  ``(query, structure)`` cases, UCQ cases, and gadget instances;
* :mod:`repro.qa.oracles` — the registry of named predicates every case
  is checked against;
* :mod:`repro.qa.shrink` — a delta-debugging minimizer that reduces a
  failing case to a 1-minimal counterexample;
* :mod:`repro.qa.corpus` — JSON persistence and replay of minimized
  findings, so every bug the fuzzer ever found stays a regression test;
* :mod:`repro.qa.fuzzer` — the budgeted driver behind ``bagcq fuzz``.

See the "Fuzzing and oracles" section of ``docs/TESTING.md``.
"""

from repro.qa.corpus import (
    case_from_entry,
    entry_from_case,
    load_corpus,
    replay_corpus,
    write_finding,
)
from repro.qa.fuzzer import FuzzFinding, FuzzReport, run_fuzz
from repro.qa.generators import FeatureMask, FuzzCase, default_schema, generate_cases
from repro.qa.oracles import Oracle, OracleResult, all_oracles, get_oracle, oracle_names
from repro.qa.shrink import shrink_case

__all__ = [
    "FeatureMask",
    "FuzzCase",
    "FuzzFinding",
    "FuzzReport",
    "Oracle",
    "OracleResult",
    "all_oracles",
    "case_from_entry",
    "default_schema",
    "entry_from_case",
    "generate_cases",
    "get_oracle",
    "load_corpus",
    "oracle_names",
    "replay_corpus",
    "run_fuzz",
    "shrink_case",
    "write_finding",
]
