"""The paper's claims as an executable registry.

Every constructive claim of the paper is registered here with a
self-contained verification callable.  ``verify_all()`` runs the whole
paper; the CLI exposes it as ``bagcq verify-paper`` and the test suite
executes each claim individually.

This is documentation-as-code: the registry is the canonical index from
statement → implementation → evidence, complementing the prose map in
DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

__all__ = ["Claim", "CLAIMS", "verify_all", "claims_by_id"]


@dataclass(frozen=True)
class Claim:
    """One verifiable statement of the paper."""

    claim_id: str
    statement: str
    modules: tuple[str, ...]
    check: Callable[[], bool]

    def verify(self) -> bool:
        return bool(self.check())


def _lemma1() -> bool:
    from repro.homomorphism import count
    from repro.queries import parse_query
    from repro.relational import Schema, Structure

    d = Structure(Schema.from_arities({"E": 2}), {"E": [(0, 1), (1, 0), (0, 0)]})
    rho = parse_query("E(x, y)")
    rho_prime = parse_query("E(u, u)")
    return count(rho * rho_prime, d) == count(rho, d) * count(rho_prime, d)


def _definition2() -> bool:
    from repro.homomorphism import count
    from repro.queries import parse_query
    from repro.relational import Schema, Structure

    d = Structure(Schema.from_arities({"E": 2}), {"E": [(0, 1), (1, 0), (0, 0)]})
    theta = parse_query("E(x, y)")
    return all(count(theta**k, d) == count(theta, d) ** k for k in range(4))


def _lemma5() -> bool:
    from repro.core import beta_gadget

    return all(beta_gadget(p).verify_equality() for p in (3, 4, 5))


def _lemma8() -> bool:
    import itertools

    from repro.core import CycliqueKind, classify_cyclique, cyclass

    for p in (4, 6, 8):
        for values in itertools.product(range(3), repeat=p):
            if classify_cyclique(values) is CycliqueKind.DEGENERATE:
                if len(cyclass(values)) > p // 2:
                    return False
    return True


def _lemma10() -> bool:
    from repro.core import gamma_gadget

    return all(gamma_gadget(m).verify_equality() for m in (3, 4, 5))


def _lemma4_section32() -> bool:
    from fractions import Fraction

    from repro.core import alpha_gadget

    return all(
        alpha_gadget(c).ratio == Fraction(c)
        and alpha_gadget(c).verify_equality()
        for c in (2, 3)
    )


def _lemma11_pipeline() -> bool:
    from repro.polynomials import hilbert_to_lemma11, standard_suite

    for instance in standard_suite():
        lemma11 = hilbert_to_lemma11(instance.polynomial).instance
        grid_violation = lemma11.find_counterexample(2) is not None
        if not instance.solvable and grid_violation:
            return False
    return True


def _lemma12() -> bool:
    from repro.core import build_pi_b, build_pi_s, lemma12_homomorphism
    from repro.homomorphism import is_homomorphism
    from repro.polynomials import Lemma11Instance, Monomial
    from repro.queries import Variable

    instance = Lemma11Instance(
        c=3,
        monomials=(Monomial.of(1, 2), Monomial.of(1, 1)),
        s_coefficients=(2, 1),
        b_coefficients=(3, 4),
    )
    mapping = dict(lemma12_homomorphism(instance))
    pi_s, pi_b = build_pi_s(instance), build_pi_b(instance)
    if not is_homomorphism(mapping, pi_b, pi_s.canonical_structure()):
        return False
    image = {t for t in mapping.values() if isinstance(t, Variable)}
    return pi_s.variables <= image


def _lemma15() -> bool:
    from repro.core import build_arena, build_pi_b, build_pi_s
    from repro.homomorphism import count
    from repro.polynomials import Lemma11Instance, Monomial

    instance = Lemma11Instance(
        c=3,
        monomials=(Monomial.of(1, 2), Monomial.of(1, 1)),
        s_coefficients=(2, 1),
        b_coefficients=(3, 4),
    )
    arena = build_arena(instance)
    for valuation in instance.valuations(2):
        d = arena.correct_database(valuation)
        if count(build_pi_s(instance), d) != instance.p_s.evaluate(valuation):
            return False
        expected = valuation[1] ** instance.d * instance.p_b.evaluate(valuation)
        if count(build_pi_b(instance), d) != expected:
            return False
    return True


def _lemmas17_18() -> bool:
    from repro.core import build_arena, build_zeta
    from repro.homomorphism import count
    from repro.polynomials import Lemma11Instance, Monomial

    instance = Lemma11Instance(
        c=3,
        monomials=(Monomial.of(1, 2), Monomial.of(1, 1)),
        s_coefficients=(2, 1),
        b_coefficients=(3, 4),
    )
    arena = build_arena(instance)
    zeta = build_zeta(arena, instance.c)
    if count(zeta.zeta_b, arena.d_arena) != zeta.c1:
        return False
    for relation in arena.rs_relations:
        bad = arena.d_arena.with_fact(relation, (("j",), ("j2",)))
        if count(zeta.zeta_b, bad) < instance.c * zeta.c1:
            return False
    return True


def _lemmas19_21() -> bool:
    import itertools

    from repro.core import build_arena, build_delta
    from repro.homomorphism import count, count_at_least
    from repro.polynomials import Lemma11Instance, Monomial

    instance = Lemma11Instance(
        c=2, monomials=(Monomial.of(1),), s_coefficients=(1,), b_coefficients=(1,)
    )
    arena = build_arena(instance)
    delta = build_delta(arena, 16)
    if count(delta.delta_b, arena.d_arena) != 1:
        return False
    names = [c.name for c in arena.constants]
    d = arena.d_arena
    for left, right in itertools.combinations(names, 2):
        merged = d.relabel({d.interpret(left): d.interpret(right)})
        if not count_at_least(delta.delta_b, merged, 2**16):
            return False
    return True


def _theorem1() -> bool:
    from repro.core import reduce_polynomial
    from repro.polynomials import always_positive, pell

    _, solvable = reduce_polynomial(pell(2).polynomial)
    witness = solvable.find_counterexample(2)
    if witness is None or solvable.holds_on(witness):
        return False
    _, unsolvable = reduce_polynomial(always_positive().polynomial)
    return unsolvable.instance.find_counterexample(2) is None


def _theorem3() -> bool:
    from repro.core import theorem3_reduction
    from repro.polynomials import Lemma11Instance, Monomial

    instance = Lemma11Instance(
        c=2, monomials=(Monomial.of(1),), s_coefficients=(1,), b_coefficients=(1,)
    )
    reduction = theorem3_reduction(instance)
    if reduction.inequality_counts != (0, 1):
        return False
    witness = reduction.find_counterexample(1)
    return witness is not None


def _theorem5() -> bool:
    from repro.core import transfer_witness
    from repro.queries import parse_query
    from repro.relational import Schema, Structure

    source = Structure(
        Schema.from_arities({"E": 2, "F": 2}),
        {"E": [(0, 0), (1, 1), (0, 1)], "F": [(0, 0)]},
    )
    transfer = transfer_witness(
        parse_query("E(x, y) & x != y"), parse_query("F(u, v)"), source
    )
    return transfer.lhs > transfer.rhs


def _lemma22() -> bool:
    from repro.homomorphism import count
    from repro.queries import parse_query
    from repro.relational import Schema, Structure, blowup, power

    d = Structure(Schema.from_arities({"E": 2}), {"E": [(0, 1), (1, 0), (1, 1)]})
    phi = parse_query("E(x, y) & E(y, x)")
    value = count(phi, d)
    return all(
        count(phi, blowup(d, k)) == k**phi.variable_count * value
        and count(phi, power(d, k)) == value**k
        for k in (2, 3)
    )


def _lemma25() -> bool:
    import itertools

    from repro.polynomials import hilbert_to_lemma11, parity_obstruction, pell

    for instance in (pell(2), parity_obstruction()):
        reduction = hilbert_to_lemma11(instance.polynomial)
        variables = sorted(reduction.q.variables)
        for values in itertools.product(range(4), repeat=len(variables)):
            valuation = dict(zip(variables, values))
            has_root = reduction.q.evaluate(valuation) == 0
            dominates = reduction.p1.evaluate(valuation) > reduction.p2.evaluate(
                valuation
            )
            if has_root != dominates:
                return False
    return True


def _well_of_positivity() -> bool:
    from repro.core import well_of_positivity
    from repro.homomorphism import count
    from repro.queries import parse_query
    from repro.relational import Schema

    schema = Schema.from_arities({"E": 2, "U": 1})
    well = well_of_positivity(schema)
    return (
        count(parse_query("E(x, y) & E(y, z) & U(x)"), well) == 1
        and count(parse_query("E(x, y) & x != y"), well) == 0
    )


CLAIMS: tuple[Claim, ...] = (
    Claim(
        "lemma-1",
        "(ρ ∧̄ ρ')(D) = ρ(D)·ρ'(D)",
        ("repro.queries.cq", "repro.homomorphism.engine"),
        _lemma1,
    ),
    Claim(
        "definition-2",
        "(θ↑k)(D) = θ(D)^k",
        ("repro.queries.cq", "repro.queries.product"),
        _definition2,
    ),
    Claim(
        "lemma-5",
        "β_s, β_b multiply by (p+1)²/2p",
        ("repro.core.beta",),
        _lemma5,
    ),
    Claim(
        "lemma-8",
        "degenerate cycliques have orbits of size ≤ p/2",
        ("repro.core.cycliq",),
        _lemma8,
    ),
    Claim(
        "lemma-10",
        "γ_s, γ_b multiply by (m−1)/m without inequalities",
        ("repro.core.gamma",),
        _lemma10,
    ),
    Claim(
        "lemma-4+section-3.2",
        "composed gadgets multiply by exactly c, one inequality total",
        ("repro.core.alpha", "repro.core.multiplication"),
        _lemma4_section32,
    ),
    Claim(
        "lemma-11",
        "the Appendix B normal form is valid and grid-consistent",
        ("repro.polynomials.lemma11", "repro.polynomials.hilbert"),
        _lemma11_pipeline,
    ),
    Claim(
        "lemma-12",
        "an onto homomorphism π_b → π_s exists (so π_s ≤ π_b everywhere)",
        ("repro.core.pi", "repro.homomorphism.surjective"),
        _lemma12,
    ),
    Claim(
        "lemma-15",
        "π_s(D) = P_s(Ξ_D) and π_b(D) = Ξ_D(x₁)^d·P_b(Ξ_D) on correct D",
        ("repro.core.pi", "repro.core.arena"),
        _lemma15,
    ),
    Claim(
        "lemmas-17-18",
        "ζ_b = C₁ on correct D and ≥ c·C₁ on slightly incorrect D",
        ("repro.core.zeta",),
        _lemmas17_18,
    ),
    Claim(
        "lemmas-19-21",
        "δ_b = 1 on correct D and ≥ 2^C on seriously incorrect D",
        ("repro.core.delta",),
        _lemmas19_21,
    ),
    Claim(
        "theorem-1",
        "solvable inputs yield verified counterexample databases",
        ("repro.core.theorem1",),
        _theorem1,
    ),
    Claim(
        "theorem-3",
        "the single-inequality reduction transfers counterexamples",
        ("repro.core.theorem3",),
        _theorem3,
    ),
    Claim(
        "theorem-5",
        "s-query inequalities are eliminable (Lemma 23 transfer)",
        ("repro.core.theorem5",),
        _theorem5,
    ),
    Claim(
        "lemma-22",
        "blow-up and product-power counting identities",
        ("repro.relational.operations",),
        _lemma22,
    ),
    Claim(
        "lemma-25",
        "Q(Ξ) = 0 iff P₁(Ξ) > P₂(Ξ)",
        ("repro.polynomials.hilbert",),
        _lemma25,
    ),
    Claim(
        "section-1.2-well",
        "the well of positivity satisfies every CQ exactly once",
        ("repro.core.theorems2_4",),
        _well_of_positivity,
    ),
)


def claims_by_id() -> dict[str, Claim]:
    return {claim.claim_id: claim for claim in CLAIMS}


def verify_all() -> Iterator[tuple[Claim, bool]]:
    """Verify every registered claim, yielding ``(claim, passed)`` pairs."""
    for claim in CLAIMS:
        yield claim, claim.verify()
