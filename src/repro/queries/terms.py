"""Terms of conjunctive queries: variables and constants.

All queries in the paper are boolean and implicitly existentially
quantified (Section 2.1), so a term is either an (existential) variable or
a constant of the language.  Both are immutable, hashable, and ordered;
hashes are precomputed because homomorphism counting hashes terms in its
innermost loops.
"""

from __future__ import annotations

from typing import Union

from repro.naming import HEART, SPADE

__all__ = [
    "Variable",
    "Constant",
    "Term",
    "SPADE_C",
    "HEART_C",
    "variables",
    "constants",
]


class _Named:
    """Shared value-object machinery for variables and constants."""

    __slots__ = ("name", "_hash")

    def __init__(self, name: str) -> None:
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "_hash", hash((type(self).__name__, name)))

    def __setattr__(self, key: str, value) -> None:
        raise AttributeError(f"{type(self).__name__} is immutable")

    def __reduce__(self):
        # The immutability guard above breaks pickle's default slot-state
        # restore; rebuild through the constructor instead (the process
        # pool in :mod:`repro.homomorphism.batch` ships terms to workers).
        return (type(self), (self.name,))

    def __eq__(self, other: object) -> bool:
        return type(other) is type(self) and other.name == self.name  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return self._hash

    def __lt__(self, other: "_Named") -> bool:
        if type(other) is not type(self):
            return type(self).__name__ < type(other).__name__
        return self.name < other.name

    def __le__(self, other: "_Named") -> bool:
        return self == other or self < other

    def __gt__(self, other: "_Named") -> bool:
        return not self <= other

    def __ge__(self, other: "_Named") -> bool:
        return not self < other

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class Variable(_Named):
    """An existentially quantified first-order variable."""

    __slots__ = ()

    def __str__(self) -> str:
        return self.name

    def is_variable(self) -> bool:
        return True

    def is_constant(self) -> bool:
        return False


class Constant(_Named):
    """A constant of the language; homomorphisms fix it (``h(a) = a``)."""

    __slots__ = ()

    def __str__(self) -> str:
        return f"#{self.name}"

    def is_variable(self) -> bool:
        return False

    def is_constant(self) -> bool:
        return True


Term = Union[Variable, Constant]

#: The two distinguished non-triviality constants (Section 1.2).
SPADE_C = Constant(SPADE)
HEART_C = Constant(HEART)


def variables(*names: str) -> tuple[Variable, ...]:
    """Convenience constructor: ``x, y = variables("x", "y")``."""
    return tuple(Variable(name) for name in names)


def constants(*names: str) -> tuple[Constant, ...]:
    """Convenience constructor: ``a, b = constants("a", "b")``."""
    return tuple(Constant(name) for name in names)
