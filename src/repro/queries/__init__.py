"""Conjunctive queries: terms, atoms, CQs, factorized products, UCQs."""

from repro.queries.atoms import Atom, Inequality
from repro.queries.cq import TRUE, ConjunctiveQuery
from repro.queries.open_query import (
    OpenQuery,
    answer_multiset,
    bag_answer_contained,
    bag_answer_counterexample,
)
from repro.queries.parser import parse_query, parse_term
from repro.queries.product import QueryProduct
from repro.queries.terms import (
    HEART_C,
    SPADE_C,
    Constant,
    Term,
    Variable,
    constants,
    variables,
)
from repro.queries.ucq import UnionOfConjunctiveQueries

__all__ = [
    "Atom",
    "ConjunctiveQuery",
    "Constant",
    "HEART_C",
    "Inequality",
    "OpenQuery",
    "QueryProduct",
    "SPADE_C",
    "TRUE",
    "Term",
    "UnionOfConjunctiveQueries",
    "Variable",
    "answer_multiset",
    "bag_answer_contained",
    "bag_answer_counterexample",
    "constants",
    "parse_query",
    "parse_term",
    "variables",
]
