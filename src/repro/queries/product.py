"""Factorized conjunctive queries: lazy ``∧̄``-products and powers.

The reductions of Section 4 build queries like ``δ_b = (∧̄_{l∈L} δ_{b,l}) ↑ C``
where the exponent ``C = c·C₁`` is astronomically large even for tiny
inputs.  Materializing ``C`` disjoint copies is impossible, but *evaluating*
them is trivial: by Lemma 1 and Definition 2 the bag-semantics value of a
disjoint conjunction is the product of the values of its factors, and
``(θ↑k)(D) = θ(D)^k``.

A :class:`QueryProduct` is a finite multiset of (query, exponent) pairs
representing their disjoint conjunction.  It supports exact evaluation
through :func:`repro.homomorphism.count` and can be *materialized* into a
plain :class:`~repro.queries.cq.ConjunctiveQuery` when the expansion stays
below a configurable size budget.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import MaterializationError, QueryError
from repro.queries.cq import ConjunctiveQuery
from repro.relational.schema import Schema

__all__ = ["QueryProduct"]

#: Default budget (in atoms) for :meth:`QueryProduct.materialize`.
DEFAULT_MATERIALIZE_BUDGET = 100_000


class QueryProduct:
    """A disjoint conjunction ``∧̄ᵢ φᵢ ↑ kᵢ`` kept in factorized form.

    >>> from repro.queries.parser import parse_query
    >>> theta = parse_query("E(x, y)")
    >>> squared = QueryProduct([(theta, 2)])
    >>> squared.total_atom_count
    2
    >>> (squared ** 10).exponents
    (20,)
    """

    __slots__ = ("_factors",)

    def __init__(self, factors: Iterable[tuple[ConjunctiveQuery, int]] = ()) -> None:
        merged: dict[ConjunctiveQuery, int] = {}
        order: list[ConjunctiveQuery] = []
        for query, exponent in factors:
            if not isinstance(query, ConjunctiveQuery):
                raise QueryError(f"not a ConjunctiveQuery: {query!r}")
            if exponent < 0:
                raise QueryError(f"negative exponent {exponent}")
            if exponent == 0 or query.is_empty():
                continue
            if query not in merged:
                order.append(query)
                merged[query] = 0
            merged[query] += exponent
        self._factors: tuple[tuple[ConjunctiveQuery, int], ...] = tuple(
            (query, merged[query]) for query in order
        )

    @classmethod
    def of(cls, query: ConjunctiveQuery, exponent: int = 1) -> "QueryProduct":
        """Wrap a single query, splitting it into connected components."""
        return cls(
            (component, exponent)
            for component in query.connected_components()
        )

    # -- accessors -----------------------------------------------------------

    @property
    def factors(self) -> tuple[tuple[ConjunctiveQuery, int], ...]:
        return self._factors

    @property
    def queries(self) -> tuple[ConjunctiveQuery, ...]:
        return tuple(query for query, _ in self._factors)

    @property
    def exponents(self) -> tuple[int, ...]:
        return tuple(exponent for _, exponent in self._factors)

    def __iter__(self) -> Iterator[tuple[ConjunctiveQuery, int]]:
        return iter(self._factors)

    def is_empty(self) -> bool:
        return not self._factors

    @property
    def schema(self) -> Schema:
        schema = Schema()
        for query, _ in self._factors:
            schema = schema.union(query.schema)
        return schema

    @property
    def total_atom_count(self) -> int:
        """Number of atoms the materialized query would have (a bignum)."""
        return sum(query.atom_count * exponent for query, exponent in self._factors)

    @property
    def total_variable_count(self) -> int:
        return sum(
            query.variable_count * exponent for query, exponent in self._factors
        )

    @property
    def total_inequality_count(self) -> int:
        return sum(
            query.inequality_count * exponent for query, exponent in self._factors
        )

    def has_inequalities(self) -> bool:
        return any(query.has_inequalities() for query, _ in self._factors)

    # -- algebra ---------------------------------------------------------------

    def disjoint_conj(self, other: "QueryProduct | ConjunctiveQuery") -> "QueryProduct":
        """``∧̄`` of two factorized queries (exponents of equal factors add)."""
        if isinstance(other, ConjunctiveQuery):
            other = QueryProduct.of(other)
        return QueryProduct(self._factors + other._factors)

    def __mul__(self, other: "QueryProduct | ConjunctiveQuery") -> "QueryProduct":
        return self.disjoint_conj(other)

    def power(self, k: int) -> "QueryProduct":
        """``↑ k`` in factorized form: multiply every exponent by ``k``."""
        if k < 0:
            raise QueryError(f"power requires k >= 0, got {k}")
        return QueryProduct(
            (query, exponent * k) for query, exponent in self._factors
        )

    def __pow__(self, k: int) -> "QueryProduct":
        return self.power(k)

    # -- materialization ----------------------------------------------------------

    def materialize(
        self, max_atoms: int = DEFAULT_MATERIALIZE_BUDGET
    ) -> ConjunctiveQuery:
        """Expand into a plain :class:`ConjunctiveQuery`.

        Raises :class:`~repro.errors.MaterializationError` when the result
        would exceed ``max_atoms`` atoms — the factorized form remains fully
        evaluable in that case.
        """
        total = self.total_atom_count
        if total > max_atoms:
            raise MaterializationError(
                f"materialization would create {total} atoms "
                f"(budget: {max_atoms}); evaluate the QueryProduct directly"
            )
        result = ConjunctiveQuery()
        for query, exponent in self._factors:
            for _ in range(exponent):
                result = result.disjoint_conj(query)
        return result

    # -- value semantics ------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QueryProduct):
            return NotImplemented
        return dict(self._factors) == dict(other._factors)

    def __hash__(self) -> int:
        return hash(frozenset(self._factors))

    def __str__(self) -> str:
        if not self._factors:
            return "TRUE"
        parts = []
        for query, exponent in self._factors:
            body = f"[{query}]"
            parts.append(body if exponent == 1 else f"{body}^{exponent}")
        return " *̄ ".join(parts)

    def __repr__(self) -> str:
        return f"QueryProduct(factors={len(self._factors)}, atoms={self.total_atom_count})"
