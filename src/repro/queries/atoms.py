"""Atoms of conjunctive queries: relational atoms and inequalities.

An :class:`Atom` is an application ``R(t₁, …, t_k)`` of a relation symbol
to terms.  An :class:`Inequality` is the paper's ``x ≠ x'`` (Section 2.1):
formally a binary relation interpreted in every structure ``D`` as
``(V_D × V_D) \\ {(s, s)}``.  Inequalities are kept apart from relational
atoms because the theorems count them ("with at most one inequality").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import QueryError
from repro.queries.terms import Constant, Term, Variable

__all__ = ["Atom", "Inequality"]


@dataclass(frozen=True)
class Atom:
    """A relational atom ``relation(terms…)``."""

    relation: str
    terms: tuple[Term, ...]

    def __post_init__(self) -> None:
        if not self.relation:
            raise QueryError("atom needs a relation name")
        if not self.terms:
            raise QueryError(f"atom of {self.relation!r} needs at least one term")
        for term in self.terms:
            if not isinstance(term, (Variable, Constant)):
                raise QueryError(
                    f"atom term {term!r} is not a Variable or Constant"
                )

    @property
    def arity(self) -> int:
        return len(self.terms)

    def variables(self) -> Iterator[Variable]:
        for term in self.terms:
            if isinstance(term, Variable):
                yield term

    def constants(self) -> Iterator[Constant]:
        for term in self.terms:
            if isinstance(term, Constant):
                yield term

    def rename(self, mapping: dict[Variable, Term]) -> "Atom":
        """Substitute variables according to ``mapping`` (constants fixed)."""
        return Atom(
            self.relation,
            tuple(
                mapping.get(term, term) if isinstance(term, Variable) else term
                for term in self.terms
            ),
        )

    def __str__(self) -> str:
        inner = ", ".join(str(term) for term in self.terms)
        return f"{self.relation}({inner})"

    def __lt__(self, other: "Atom") -> bool:
        return (self.relation, self.terms) < (other.relation, other.terms)


@dataclass(frozen=True)
class Inequality:
    """The atomic formula ``left ≠ right``.

    The pair is stored in sorted order so that ``x ≠ y`` and ``y ≠ x``
    compare equal, matching the symmetric semantics.
    """

    left: Term
    right: Term

    def __post_init__(self) -> None:
        for term in (self.left, self.right):
            if not isinstance(term, (Variable, Constant)):
                raise QueryError(f"inequality term {term!r} is not a term")
        first, second = sorted(
            (self.left, self.right), key=lambda t: (t.is_constant(), t.name)
        )
        object.__setattr__(self, "left", first)
        object.__setattr__(self, "right", second)

    def is_trivially_false(self) -> bool:
        """``t ≠ t`` can never be satisfied."""
        return self.left == self.right

    def variables(self) -> Iterator[Variable]:
        for term in (self.left, self.right):
            if isinstance(term, Variable):
                yield term

    def constants(self) -> Iterator[Constant]:
        for term in (self.left, self.right):
            if isinstance(term, Constant):
                yield term

    def rename(self, mapping: dict[Variable, Term]) -> "Inequality":
        def image(term: Term) -> Term:
            if isinstance(term, Variable):
                return mapping.get(term, term)
            return term

        return Inequality(image(self.left), image(self.right))

    def __str__(self) -> str:
        return f"{self.left} != {self.right}"

    def __lt__(self, other: "Inequality") -> bool:
        return (str(self.left), str(self.right)) < (str(other.left), str(other.right))
