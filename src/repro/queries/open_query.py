"""Non-boolean conjunctive queries: answer multisets and bag containment.

The paper works with *boolean* queries throughout (Section 2), but the
problem it studies — ``QCP^bag`` as stated in Section 1.1 — is about
general CQs whose answers form a **multiset of tuples**: ``Ψ(D)`` maps
each answer tuple to the number of homomorphisms producing it, and
``Ψ_s(D) ⊆ Ψ_b(D)`` is multiset inclusion (pointwise ``≤`` on
multiplicities).

An :class:`OpenQuery` is a boolean :class:`ConjunctiveQuery` body plus an
ordered tuple of *free* (output) variables.  Two classical reductions
connect the open and boolean worlds, both implemented here:

* grounding an output tuple turns free variables into constants
  (:meth:`OpenQuery.ground`), which is the Section 2.3 observation read
  right-to-left: containment of boolean queries with constants ``a`` is
  the same as containment of the open queries with ``a`` read as free
  variables;
* the boolean query of an open query simply drops the output tuple
  (:meth:`OpenQuery.boolean`).
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Iterator, Mapping, Sequence

from repro.errors import QueryError
from repro.homomorphism.backtracking import enumerate_homomorphisms
from repro.queries.cq import ConjunctiveQuery
from repro.queries.terms import Constant, Term, Variable
from repro.relational.structure import Structure

__all__ = ["OpenQuery", "bag_answer_contained", "answer_multiset"]


class OpenQuery:
    """A conjunctive query with an ordered tuple of output variables.

    >>> from repro.queries import parse_query
    >>> q = OpenQuery(parse_query("E(x, y) & E(y, z)"), ("x", "z"))
    >>> q.arity
    2
    """

    __slots__ = ("_body", "_head")

    def __init__(
        self,
        body: ConjunctiveQuery,
        head: Sequence[Variable | str],
    ) -> None:
        self._body = body
        head_variables = tuple(
            Variable(v) if isinstance(v, str) else v for v in head
        )
        for variable in head_variables:
            if not isinstance(variable, Variable):
                raise QueryError(f"head terms must be variables, got {variable!r}")
            if variable not in body.variables:
                raise QueryError(
                    f"head variable {variable} does not occur in the body"
                )
        self._head = head_variables

    # -- accessors ---------------------------------------------------------

    @property
    def body(self) -> ConjunctiveQuery:
        return self._body

    @property
    def head(self) -> tuple[Variable, ...]:
        return self._head

    @property
    def arity(self) -> int:
        return len(self._head)

    def is_boolean(self) -> bool:
        return not self._head

    def is_projection_free(self) -> bool:
        """No existential variables: every body variable is an output.

        The fragment whose bag containment Afrati et al. [7] proved
        decidable (for both queries projection-free).
        """
        return set(self._head) == set(self._body.variables)

    # -- conversions -----------------------------------------------------------

    def boolean(self) -> ConjunctiveQuery:
        """Forget the head: the boolean query counting all homomorphisms."""
        return self._body

    def ground(self, answer: Sequence) -> tuple[ConjunctiveQuery, Structure]:
        """Pin the head to an answer tuple via fresh constants.

        Returns the boolean query with each head variable replaced by a
        fresh constant, plus a helper interpretation fragment mapping each
        fresh constant name to the corresponding answer element (merge it
        into your structure with ``with_constant``).
        """
        if len(answer) != self.arity:
            raise QueryError(
                f"answer arity {len(answer)} != head arity {self.arity}"
            )
        mapping: dict[Variable, Term] = {}
        constants: dict[str, object] = {}
        for position, (variable, element) in enumerate(zip(self._head, answer)):
            constant = Constant(f"__ans_{position}")
            mapping[variable] = constant
            constants[constant.name] = element
        grounded = self._body.rename(mapping)
        fragment = Structure(grounded.schema, constants=constants)
        return grounded, fragment

    # -- evaluation ---------------------------------------------------------------

    def answers(self, structure: Structure) -> Counter:
        """The answer multiset ``Ψ(D)``: tuple → multiplicity.

        The multiplicity of a tuple is the number of homomorphisms of the
        body mapping the head to it (duplicates preserved — SQL without
        DISTINCT, the paper's motivating semantics).
        """
        result: Counter = Counter()
        for assignment in enumerate_homomorphisms(self._body, structure):
            result[tuple(assignment[v] for v in self._head)] += 1
        return result

    def __str__(self) -> str:
        head = ", ".join(str(v) for v in self._head)
        return f"({head}) <- {self._body}"

    def __repr__(self) -> str:
        return f"OpenQuery(head={self._head!r}, body={self._body!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, OpenQuery):
            return NotImplemented
        return self._body == other._body and self._head == other._head

    def __hash__(self) -> int:
        return hash((self._body, self._head))


def answer_multiset(query: OpenQuery, structure: Structure) -> Counter:
    """Free-function alias of :meth:`OpenQuery.answers`."""
    return query.answers(structure)


def bag_answer_contained(
    query_s: OpenQuery, query_b: OpenQuery, structure: Structure
) -> bool:
    """``Ψ_s(D) ⊆ Ψ_b(D)`` as multisets, on one database.

    Pointwise comparison of answer multiplicities — the ``⊆`` of the QCP
    statement in Section 1.1 under bag semantics.  Queries must have equal
    arity.
    """
    if query_s.arity != query_b.arity:
        raise QueryError(
            f"cannot compare answers of arities {query_s.arity} and "
            f"{query_b.arity}"
        )
    small = query_s.answers(structure)
    big = query_b.answers(structure)
    return all(count <= big[answer] for answer, count in small.items())


def bag_answer_counterexample(
    query_s: OpenQuery,
    query_b: OpenQuery,
    candidates: Iterable[Structure],
) -> tuple[Structure, tuple] | None:
    """First ``(D, answer)`` with ``Ψ_s(D)[answer] > Ψ_b(D)[answer]``."""
    for structure in candidates:
        small = query_s.answers(structure)
        big = query_b.answers(structure)
        for answer, count in sorted(small.items(), key=lambda kv: repr(kv[0])):
            if count > big[answer]:
                return structure, answer
    return None
