"""Unions of conjunctive queries (UCQs) under bag semantics.

Needed for the baseline of Ioannidis–Ramakrishnan [14], which the paper
cites as the "easy" undecidability result: ``QCP^bag_UCQ`` is undecidable
via a straightforward encoding of Hilbert's 10th problem, because a sum of
monomials translates naturally into a *disjunction* of CQs.

Under bag semantics the value of a boolean UCQ on ``D`` is the **sum** of
the values of its disjuncts (bag union keeps duplicates; this is the
standard multiset semantics of UNION ALL).
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import QueryError
from repro.queries.cq import ConjunctiveQuery
from repro.relational.schema import Schema

__all__ = ["UnionOfConjunctiveQueries"]


class UnionOfConjunctiveQueries:
    """A finite multiset of boolean CQs, summed under bag semantics.

    Disjuncts form a *multiset*: the same CQ may appear with a
    multiplicity, contributing ``multiplicity · φ(D)`` to the union — this
    is exactly how natural-number coefficients of a polynomial are encoded
    in the [14] baseline.
    """

    __slots__ = ("_disjuncts",)

    def __init__(
        self, disjuncts: Iterable[tuple[ConjunctiveQuery, int]] = ()
    ) -> None:
        merged: dict[ConjunctiveQuery, int] = {}
        order: list[ConjunctiveQuery] = []
        for query, multiplicity in disjuncts:
            if not isinstance(query, ConjunctiveQuery):
                raise QueryError(f"not a ConjunctiveQuery: {query!r}")
            if multiplicity < 0:
                raise QueryError(f"negative multiplicity {multiplicity}")
            if multiplicity == 0:
                continue
            if query not in merged:
                order.append(query)
                merged[query] = 0
            merged[query] += multiplicity
        self._disjuncts: tuple[tuple[ConjunctiveQuery, int], ...] = tuple(
            (query, merged[query]) for query in order
        )

    @classmethod
    def of(cls, *queries: ConjunctiveQuery) -> "UnionOfConjunctiveQueries":
        return cls((query, 1) for query in queries)

    @property
    def disjuncts(self) -> tuple[tuple[ConjunctiveQuery, int], ...]:
        return self._disjuncts

    def __iter__(self) -> Iterator[tuple[ConjunctiveQuery, int]]:
        return iter(self._disjuncts)

    def __len__(self) -> int:
        return sum(multiplicity for _, multiplicity in self._disjuncts)

    def is_empty(self) -> bool:
        return not self._disjuncts

    @property
    def schema(self) -> Schema:
        schema = Schema()
        for query, _ in self._disjuncts:
            schema = schema.union(query.schema)
        return schema

    def union(self, other: "UnionOfConjunctiveQueries") -> "UnionOfConjunctiveQueries":
        """Bag union (UNION ALL): multiplicities add."""
        return UnionOfConjunctiveQueries(self._disjuncts + other._disjuncts)

    def __or__(self, other: "UnionOfConjunctiveQueries") -> "UnionOfConjunctiveQueries":
        return self.union(other)

    def scale(self, factor: int) -> "UnionOfConjunctiveQueries":
        """Multiply every multiplicity by a natural number."""
        if factor < 0:
            raise QueryError(f"negative factor {factor}")
        return UnionOfConjunctiveQueries(
            (query, multiplicity * factor)
            for query, multiplicity in self._disjuncts
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, UnionOfConjunctiveQueries):
            return NotImplemented
        return dict(self._disjuncts) == dict(other._disjuncts)

    def __hash__(self) -> int:
        return hash(frozenset(self._disjuncts))

    def __str__(self) -> str:
        if not self._disjuncts:
            return "FALSE"
        parts = []
        for query, multiplicity in self._disjuncts:
            body = f"({query})"
            parts.append(body if multiplicity == 1 else f"{multiplicity}·{body}")
        return " | ".join(parts)

    def __repr__(self) -> str:
        return f"UnionOfConjunctiveQueries(disjuncts={len(self._disjuncts)})"
