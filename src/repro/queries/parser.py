"""A small textual syntax for conjunctive queries.

Grammar (whitespace-insensitive)::

    query      := clause (("&" | "," | "∧") clause)*  |  "TRUE"
    clause     := atom | inequality
    atom       := NAME "(" term ("," term)* ")"
    inequality := term ("!=" | "≠") term
    term       := NAME          -- a variable
                | "#" NAME      -- a constant
    NAME       := [A-Za-z_][A-Za-z0-9_']*

Example::

    >>> phi = parse_query("R(x, y) & S(y, #a) & x != y")
    >>> phi.atom_count, phi.inequality_count
    (2, 1)
"""

from __future__ import annotations

import re
from typing import Iterator, NamedTuple

from repro.errors import ParseError
from repro.queries.atoms import Atom, Inequality
from repro.queries.cq import ConjunctiveQuery
from repro.queries.terms import Constant, Term, Variable

__all__ = ["parse_query", "parse_term"]

_TOKEN_SPEC = [
    ("NAME", r"[A-Za-z_][A-Za-z0-9_']*"),
    ("HASH", r"#"),
    ("LPAREN", r"\("),
    ("RPAREN", r"\)"),
    ("COMMA", r","),
    ("NEQ", r"!=|≠"),
    ("AND", r"&|∧"),
    ("SKIP", r"\s+"),
    ("BAD", r"."),
]
_TOKEN_RE = re.compile("|".join(f"(?P<{name}>{rx})" for name, rx in _TOKEN_SPEC))


class _Token(NamedTuple):
    kind: str
    text: str
    position: int


def _tokenize(text: str) -> Iterator[_Token]:
    for match in _TOKEN_RE.finditer(text):
        kind = match.lastgroup or "BAD"
        if kind == "SKIP":
            continue
        if kind == "BAD":
            raise ParseError(
                f"unexpected character {match.group()!r} at offset {match.start()}"
            )
        yield _Token(kind, match.group(), match.start())


class _Parser:
    def __init__(self, text: str) -> None:
        self._tokens = list(_tokenize(text))
        self._index = 0

    def _peek(self) -> _Token | None:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _next(self, expected: str | None = None) -> _Token:
        token = self._peek()
        if token is None:
            raise ParseError(
                f"unexpected end of input (expected {expected or 'a token'})"
            )
        if expected is not None and token.kind != expected:
            raise ParseError(
                f"expected {expected} at offset {token.position}, "
                f"got {token.text!r}"
            )
        self._index += 1
        return token

    def parse_query(self) -> ConjunctiveQuery:
        atoms: list[Atom] = []
        inequalities: list[Inequality] = []
        first = self._peek()
        if first is not None and first.kind == "NAME" and first.text == "TRUE":
            self._next()
            if self._peek() is not None:
                raise ParseError("TRUE cannot be combined with other clauses")
            return ConjunctiveQuery()
        while True:
            clause = self._parse_clause()
            if isinstance(clause, Atom):
                atoms.append(clause)
            else:
                inequalities.append(clause)
            token = self._peek()
            if token is None:
                break
            if token.kind in ("AND", "COMMA"):
                self._next()
                continue
            raise ParseError(
                f"expected '&' or ',' at offset {token.position}, got {token.text!r}"
            )
        return ConjunctiveQuery(atoms, inequalities)

    def _parse_clause(self) -> Atom | Inequality:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of input (expected a clause)")
        if token.kind == "NAME":
            lookahead = (
                self._tokens[self._index + 1]
                if self._index + 1 < len(self._tokens)
                else None
            )
            if lookahead is not None and lookahead.kind == "LPAREN":
                return self._parse_atom()
        left = self._parse_term()
        self._next("NEQ")
        right = self._parse_term()
        return Inequality(left, right)

    def _parse_atom(self) -> Atom:
        name = self._next("NAME").text
        self._next("LPAREN")
        terms = [self._parse_term()]
        while True:
            token = self._peek()
            if token is None:
                raise ParseError(f"unterminated atom {name!r}")
            if token.kind == "COMMA":
                self._next()
                terms.append(self._parse_term())
                continue
            self._next("RPAREN")
            break
        return Atom(name, tuple(terms))

    def _parse_term(self) -> Term:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of input (expected a term)")
        if token.kind == "HASH":
            self._next()
            return Constant(self._next("NAME").text)
        if token.kind == "NAME":
            return Variable(self._next().text)
        raise ParseError(
            f"expected a term at offset {token.position}, got {token.text!r}"
        )


def parse_query(text: str) -> ConjunctiveQuery:
    """Parse the textual query syntax into a :class:`ConjunctiveQuery`."""
    parser = _Parser(text)
    query = parser.parse_query()
    return query


def parse_term(text: str) -> Term:
    """Parse a single term (``x`` variable, ``#a`` constant)."""
    parser = _Parser(text)
    term = parser._parse_term()
    if parser._peek() is not None:
        raise ParseError(f"trailing input after term in {text!r}")
    return term
