"""Boolean conjunctive queries under bag semantics.

A :class:`ConjunctiveQuery` is a finite conjunction of relational atoms
and inequalities, with every variable existentially quantified
(Section 2.1 of the paper).  Under bag semantics its value on a structure
``D`` is the *number of homomorphisms* ``φ(D) = |Hom(φ, D)|``, a natural
number.

The module implements the paper's query algebra:

* ``φ ∧ ψ`` (:meth:`ConjunctiveQuery.conj`, operator ``&``) — conjunction
  with shared variable scope;
* ``φ ∧̄ ψ`` (:meth:`ConjunctiveQuery.disjoint_conj`, operator ``*``) —
  disjoint conjunction, Section 2.2: variables are treated as local, so
  ``(φ ∧̄ ψ)(D) = φ(D)·ψ(D)`` (Lemma 1);
* ``φ ↑ k`` (:meth:`ConjunctiveQuery.power`, operator ``**``) — Definition
  2, with ``(φ↑k)(D) = φ(D)^k``.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

from repro.errors import QueryError
from repro.naming import NameSupply
from repro.queries.atoms import Atom, Inequality
from repro.queries.terms import Constant, Term, Variable
from repro.relational.schema import RelationSymbol, Schema
from repro.relational.structure import Structure

__all__ = ["ConjunctiveQuery", "TRUE"]


class ConjunctiveQuery:
    """An immutable boolean conjunctive query, possibly with inequalities.

    Atoms form a *set*: repeating an atom does not change the semantics,
    so duplicates are dropped (first occurrence kept for display order).

    >>> from repro.queries.terms import variables
    >>> x, y = variables("x", "y")
    >>> phi = ConjunctiveQuery([Atom("E", (x, y)), Atom("E", (y, x))])
    >>> sorted(v.name for v in phi.variables)
    ['x', 'y']
    >>> str(phi)
    'E(x, y) & E(y, x)'
    """

    __slots__ = ("_atoms", "_inequalities", "_schema", "_variables", "_constants")

    def __init__(
        self,
        atoms: Iterable[Atom] = (),
        inequalities: Iterable[Inequality] = (),
    ) -> None:
        seen_atoms: dict[Atom, None] = {}
        for atom in atoms:
            if not isinstance(atom, Atom):
                raise QueryError(f"not an Atom: {atom!r}")
            seen_atoms.setdefault(atom, None)
        seen_ineqs: dict[Inequality, None] = {}
        for ineq in inequalities:
            if not isinstance(ineq, Inequality):
                raise QueryError(f"not an Inequality: {ineq!r}")
            seen_ineqs.setdefault(ineq, None)
        self._atoms: tuple[Atom, ...] = tuple(seen_atoms)
        self._inequalities: tuple[Inequality, ...] = tuple(seen_ineqs)

        arities: dict[str, int] = {}
        for atom in self._atoms:
            existing = arities.get(atom.relation)
            if existing is not None and existing != atom.arity:
                raise QueryError(
                    f"relation {atom.relation!r} used with arities "
                    f"{existing} and {atom.arity}"
                )
            arities[atom.relation] = atom.arity
        self._schema = Schema(
            RelationSymbol(name, arity) for name, arity in arities.items()
        )

        variables: set[Variable] = set()
        constants: set[Constant] = set()
        for atom in self._atoms:
            variables.update(atom.variables())
            constants.update(atom.constants())
        for ineq in self._inequalities:
            variables.update(ineq.variables())
            constants.update(ineq.constants())
        self._variables = frozenset(variables)
        self._constants = frozenset(constants)

    # -- accessors -------------------------------------------------------

    @property
    def atoms(self) -> tuple[Atom, ...]:
        return self._atoms

    @property
    def inequalities(self) -> tuple[Inequality, ...]:
        return self._inequalities

    @property
    def schema(self) -> Schema:
        """The relational schema induced by the query's atoms."""
        return self._schema

    @property
    def variables(self) -> frozenset[Variable]:
        """``Var(ψ)`` from Section 2.1."""
        return self._variables

    @property
    def constants(self) -> frozenset[Constant]:
        return self._constants

    @property
    def terms(self) -> frozenset[Term]:
        """``V_ψ`` from Section 2.1: all variables and constants."""
        return self._variables | self._constants

    @property
    def atom_count(self) -> int:
        return len(self._atoms)

    @property
    def inequality_count(self) -> int:
        """How many inequalities the query carries.

        The headline of Theorem 3 is that one inequality suffices for
        undecidability (versus 59¹⁰ in Jayram–Kolaitis–Vee).
        """
        return len(self._inequalities)

    @property
    def variable_count(self) -> int:
        return len(self._variables)

    @property
    def size(self) -> int:
        """Total number of term occurrences across atoms and inequalities."""
        return sum(atom.arity for atom in self._atoms) + 2 * len(self._inequalities)

    def is_ground(self) -> bool:
        """True when the query mentions no variables (only constants)."""
        return not self._variables

    def is_empty(self) -> bool:
        return not self._atoms and not self._inequalities

    def has_inequalities(self) -> bool:
        return bool(self._inequalities)

    # -- algebra -----------------------------------------------------------

    def conj(self, other: "ConjunctiveQuery") -> "ConjunctiveQuery":
        """``φ ∧ ψ``: conjunction with shared variable scope (Section 2.2)."""
        return ConjunctiveQuery(
            self._atoms + other._atoms,
            self._inequalities + other._inequalities,
        )

    def __and__(self, other: "ConjunctiveQuery") -> "ConjunctiveQuery":
        return self.conj(other)

    def disjoint_conj(self, other: "ConjunctiveQuery") -> "ConjunctiveQuery":
        """``φ ∧̄ ψ``: the variables of ``ψ`` are treated as local.

        Implemented by renaming the right operand's variables away from the
        left operand's, so that Lemma 1, ``(φ ∧̄ ψ)(D) = φ(D)·ψ(D)``, holds
        by construction.  Constants are *not* renamed (they are global).
        """
        supply = NameSupply({v.name for v in self._variables})
        renamed = other.rename_apart(supply)
        return self.conj(renamed)

    def __mul__(self, other: "ConjunctiveQuery") -> "ConjunctiveQuery":
        return self.disjoint_conj(other)

    def power(self, k: int) -> "ConjunctiveQuery":
        """``φ ↑ k`` (Definition 2): ``k`` disjoint copies; ``φ↑0`` is TRUE.

        Materializes ``k`` copies of the syntax; for the astronomically
        large exponents of Section 4 use
        :class:`repro.queries.product.QueryProduct` instead.
        """
        if k < 0:
            raise QueryError(f"power requires k >= 0, got {k}")
        result = ConjunctiveQuery()
        for _ in range(k):
            result = result.disjoint_conj(self)
        return result

    def __pow__(self, k: int) -> "ConjunctiveQuery":
        return self.power(k)

    # -- renaming ------------------------------------------------------------

    def rename(self, mapping: Mapping[Variable, Term]) -> "ConjunctiveQuery":
        """Substitute variables; merging variables is allowed."""
        mapping = dict(mapping)
        return ConjunctiveQuery(
            (atom.rename(mapping) for atom in self._atoms),
            (ineq.rename(mapping) for ineq in self._inequalities),
        )

    def rename_apart(self, supply: NameSupply) -> "ConjunctiveQuery":
        """Rename every variable to a fresh name drawn from ``supply``."""
        mapping: dict[Variable, Term] = {
            variable: Variable(supply.fresh(variable.name))
            for variable in sorted(self._variables)
        }
        return self.rename(mapping)

    def without_inequalities(self) -> "ConjunctiveQuery":
        """Drop all inequalities (the ``ψ'_s`` of Lemma 23)."""
        return ConjunctiveQuery(self._atoms)

    # -- canonical structure ---------------------------------------------------

    def canonical_structure(self) -> Structure:
        """The canonical structure of the query (Section 2.1).

        Elements are the query's terms; constants interpret themselves.
        Inequalities are *not* represented (they are not atoms of the
        canonical structure; Chandra–Merlin style arguments only use the
        relational part).
        """
        facts: dict[str, set[tuple]] = {}
        for atom in self._atoms:
            facts.setdefault(atom.relation, set()).add(atom.terms)
        constants = {constant.name: constant for constant in self._constants}
        return Structure(self._schema, facts, constants, self.terms)

    @classmethod
    def of_structure(cls, structure: Structure) -> "ConjunctiveQuery":
        """The canonical (boolean) query of a structure.

        Elements interpreting a constant become that constant; all other
        elements become variables named after their ``repr``.
        """
        constant_of: dict[object, Constant] = {}
        for name, element in structure.constants.items():
            constant_of.setdefault(element, Constant(name))

        supply = NameSupply()
        variable_of: dict[object, Variable] = {}

        def term_of(element: object) -> Term:
            if element in constant_of:
                return constant_of[element]
            if element not in variable_of:
                variable_of[element] = Variable(supply.fresh(f"v_{element!r}"))
            return variable_of[element]

        atoms = [
            Atom(name, tuple(term_of(value) for value in values))
            for name, values in structure.all_facts()
        ]
        return cls(atoms)

    # -- component structure ------------------------------------------------

    def connected_components(self) -> list["ConjunctiveQuery"]:
        """Split into variable-connected components.

        Two atoms are connected when they share a *variable* (constants do
        not connect: homomorphisms fix them, so counts factor across parts
        that share only constants).  All ground atoms and ground
        inequalities are gathered into one 0/1-valued component, listed
        first when present.  The product of the component counts equals the
        count of the whole query — the factorization the evaluation engine
        relies on.
        """
        parent: dict[Variable, Variable] = {v: v for v in self._variables}

        def find(v: Variable) -> Variable:
            while parent[v] != v:
                parent[v] = parent[parent[v]]
                v = parent[v]
            return v

        def union(a: Variable, b: Variable) -> None:
            parent[find(a)] = find(b)

        def link_all(vs: Sequence[Variable]) -> None:
            for first, second in zip(vs, vs[1:]):
                union(first, second)

        for atom in self._atoms:
            link_all(list(atom.variables()))
        for ineq in self._inequalities:
            link_all(list(ineq.variables()))

        ground_atoms: list[Atom] = []
        ground_ineqs: list[Inequality] = []
        atom_groups: dict[Variable, list[Atom]] = {}
        ineq_groups: dict[Variable, list[Inequality]] = {}
        for atom in self._atoms:
            atom_vars = list(atom.variables())
            if atom_vars:
                atom_groups.setdefault(find(atom_vars[0]), []).append(atom)
            else:
                ground_atoms.append(atom)
        for ineq in self._inequalities:
            ineq_vars = list(ineq.variables())
            if ineq_vars:
                ineq_groups.setdefault(find(ineq_vars[0]), []).append(ineq)
            else:
                ground_ineqs.append(ineq)

        components: list[ConjunctiveQuery] = []
        if ground_atoms or ground_ineqs:
            components.append(ConjunctiveQuery(ground_atoms, ground_ineqs))
        roots = sorted(
            set(atom_groups) | set(ineq_groups), key=lambda v: v.name
        )
        for root in roots:
            components.append(
                ConjunctiveQuery(
                    atom_groups.get(root, ()), ineq_groups.get(root, ())
                )
            )
        return components

    def is_connected(self) -> bool:
        return len(self.connected_components()) <= 1

    # -- value semantics ---------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConjunctiveQuery):
            return NotImplemented
        return (
            frozenset(self._atoms) == frozenset(other._atoms)
            and frozenset(self._inequalities) == frozenset(other._inequalities)
        )

    def __hash__(self) -> int:
        return hash((frozenset(self._atoms), frozenset(self._inequalities)))

    def __str__(self) -> str:
        if self.is_empty():
            return "TRUE"
        parts = [str(atom) for atom in self._atoms]
        parts.extend(str(ineq) for ineq in self._inequalities)
        return " & ".join(parts)

    def __repr__(self) -> str:
        return (
            f"ConjunctiveQuery(atoms={len(self._atoms)}, "
            f"inequalities={len(self._inequalities)}, "
            f"variables={len(self._variables)})"
        )


#: The empty conjunction — satisfied exactly once in every structure.
TRUE = ConjunctiveQuery()
