"""Command-line interface: ``bagcq``.

Subcommands::

    bagcq reduce --instance pell_nontrivial:2 [--grid 3]
        Run the full Hilbert-10 → Lemma 11 → Theorem 1 pipeline on a named
        Diophantine instance and search a valuation grid for a verified
        counterexample database.

    bagcq gadget --c 3 [--check-structures 200]
        Build the α multiplication gadget for c, verify its (=) witness and
        probe the (≤) condition on random structures.

    bagcq evaluate --query "E(x,y) & E(y,x)" --facts "E(a,b) E(b,a)" \\
            [--engine auto] [--workers 4] [--no-cache]
        Count homomorphisms of a query over an inline database, optionally
        fanning component evaluation across a process pool; repeated
        components are shared through the canonicalization-keyed count
        cache unless ``--no-cache``.  The default ``--engine auto`` routes
        every connected component through the repro.planner cost model.

    bagcq explain --query "E(x,y) & E(y,z)" [--facts "E(a,b) E(b,c)"] [--json]
        Print the evaluation plan the ``auto`` engine would execute:
        connected components, the engine and cost estimate chosen for
        each, and plan-cache hit/miss totals.  Without ``--facts`` the
        query is planned against its own canonical database; ``--json``
        emits the machine-readable plan (identical to the service's
        ``/explain`` payload).

    bagcq update --facts "E(a,b) E(b,c)" --query "E(x,y) & E(y,z)" \\
            --insert "E(c,a)" [--delete "E(a,b)"] [--delta-file deltas.json]
        Apply a mutation batch to an inline database through the
        incremental :class:`repro.homomorphism.delta.DeltaEvaluator`:
        print the delta report (version, touched relations, cache
        migrations/evictions) after every step and, with ``--query``,
        the recount — only affected components are recomputed, the rest
        are reused Lemma-1 factors (``--stats`` shows the split).

    bagcq serve [--port 8642] [--workers 4] [--queue-depth 64] \\
            [--deadline-ms 30000] [--no-coalesce] [--shards N] \\
            [--snapshot-dir DIR]
        Run the long-lived evaluation daemon (``repro.service``): warm
        shared caches, admission control, single-flight coalescing of
        identical requests, per-request deadlines, /healthz + /metrics.
        ``--shards N`` (N > 1) runs N such servers as supervised
        subprocesses behind a consistent-hash router (``repro.shard``);
        ``--snapshot-dir`` adds the durable write-through/warm-restore
        cache tier.

    bagcq snapshot [--url URL]
        Ask a running daemon (or router — it fans out to every shard)
        to bulk-sync its caches to the durable tier (``POST /snapshot``).

    bagcq call evaluate --query "E(x,y)" --facts "E(a,b)" [--url URL]
    bagcq call db --db g --facts "E(a,b) E(b,c)"
    bagcq call update --db g --insert "E(c,a)" [--delete "E(a,b)"]
    bagcq call evaluate --query "E(x,y)" --db g
    bagcq call healthz | metrics | traces | explain | decide …
        Drive a running daemon from the shell through the retrying
        ``ServiceClient``; ``call db`` loads a named server-resident
        database, ``call update`` mutates it in place (bumping its
        version), and ``call evaluate --db`` counts against it.

    bagcq loadgen --url URL [--scenario NAME]… [--requests 120] \\
            [--clients 4] [--seed 0] [--output BENCH_load.json] [--check-slo]
        Replay the named seeded traffic scenarios (default: all five)
        against a running daemon and print throughput / server-side
        p50/p95/p99 / shed-rate per scenario (repro.loadgen).

    bagcq slo --run BENCH_load.json [--baseline benchmarks/BENCH_load.json]
        Judge a recorded load run against the declared objectives and,
        when a baseline is given, against it (the CI regression gate).
        Exits non-zero on any violation.

    bagcq calibrate [--cases 40] [--repeat 3] [--seed 0] [--output PATH]
        Fit the planner's per-engine cost scales from measured wall time
        on the seeded case stream and print them as stable JSON (load
        them with repro.planner.CostConstants.from_dict).

    bagcq compare --instance linear:2:3:7
        Print the inequality-budget comparison against Jayram-Kolaitis-Vee.

    bagcq search --phi-s "E(x,y) & E(y,z) & E(z,x)" --phi-b "E(x,y)" \\
            --multiplier 2 --domain-size 3 --count 200 [--workers 2]
        Search a seeded stream of random databases for a counterexample to
        ``multiplier*phi_s(D) <= phi_b(D) + additive``.  The verdict is
        bit-identical across --workers/--no-cache/--batch-size settings.

    bagcq fuzz --max-cases 2000 --seed 0 [--oracle cross_engine] \\
            [--corpus tests/corpus] [--budget-seconds 60]
        Run the repro.qa differential fuzzer: seeded cases, paper-lemma
        oracles, delta-debugging shrinker.  Existing corpus entries are
        replayed first; minimized findings are written back to --corpus.

Every subcommand accepts ``--stats`` (print an observability report —
per-step spans plus engine/search counters — to stderr) and
``--stats-json PATH`` (write the same report as stable JSON).  See
``docs/OBSERVABILITY.md`` for the metric glossary.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.errors import BagCQError
from repro.queries.parser import parse_query
from repro.relational.structure import Structure

__all__ = ["main"]


def _load_instance(spec: str):
    """Resolve ``name`` or ``name:arg1:arg2…`` to a Diophantine instance."""
    from repro.polynomials import diophantine

    name, _, argument_text = spec.partition(":")
    factories = {
        "linear": diophantine.linear,
        "pell": diophantine.pell,
        "pell_nontrivial": diophantine.pell_nontrivial,
        "sum_of_squares": diophantine.sum_of_squares,
        "markov": diophantine.markov,
        "fermat_cubes": diophantine.fermat_cubes,
        "always_positive": diophantine.always_positive,
        "parity_obstruction": diophantine.parity_obstruction,
    }
    if name not in factories:
        raise SystemExit(
            f"unknown instance {name!r}; choose from {sorted(factories)}"
        )
    arguments = [int(piece) for piece in argument_text.split(":") if piece]
    return factories[name](*arguments)


def _parse_facts(text: str) -> Structure:
    """Parse an inline database (delegates to :func:`repro.io.structure_from_facts`)."""
    from repro.io import structure_from_facts

    return structure_from_facts(text)


def _command_reduce(args: argparse.Namespace) -> int:
    from repro.core.theorem1 import reduce_polynomial

    instance = _load_instance(args.instance)
    print(instance)
    hilbert, reduction = reduce_polynomial(instance.polynomial)
    print()
    print(hilbert.describe())
    print()
    report = reduction.size_report()
    print(f"Theorem 1 output: C = {report['C']}")
    print(
        f"  phi_s: {report['phi_s_atoms']} atoms, "
        f"{report['phi_s_variables']} variables"
    )
    print(
        f"  phi_b: {report['phi_b_atoms']} atoms, "
        f"{report['phi_b_variables']} variables"
    )
    # Sanity-check the reduction by exact counting on one correct
    # database (the all-ones valuation): ℂ·φ_s(D) ≤ φ_b(D) must hold.
    # This also exercises the counting engines, so a --stats run shows
    # real backtracking/memo numbers even when the grid search is empty.
    from repro.obs.trace import span as obs_span

    with obs_span("reduce.baseline_check") as step:
        baseline = {index: 1 for index in range(1, reduction.instance.n + 1)}
        database = reduction.correct_database(baseline)
        holds = reduction.holds_on(database)
        step.set(holds=holds, domain=len(database.domain))
    print(
        f"baseline check (all-ones valuation, |domain| = "
        f"{len(database.domain)}): C*phi_s <= phi_b {'holds' if holds else 'VIOLATED'}"
    )
    if args.grid >= 0:
        witness = reduction.find_counterexample(args.grid)
        if witness is None:
            print(f"no counterexample on the {args.grid}-grid")
        else:
            print(
                f"verified counterexample database found "
                f"(|domain| = {len(witness.domain)}, "
                f"{witness.fact_count()} facts)"
            )
    return 0


def _command_gadget(args: argparse.Namespace) -> int:
    from repro.core.alpha import alpha_gadget
    from repro.decision.search import random_structures

    gadget = alpha_gadget(args.c)
    print(gadget)
    counts = gadget.witness_counts()
    print(f"witness counts: alpha_s = {counts[0]}, alpha_b = {counts[1]}")
    print(f"equality (=) verified: {gadget.verify_equality()}")
    if args.check_structures > 0:
        schema = gadget.query_s.schema.union(gadget.query_b.schema)
        stream = random_structures(
            schema,
            domain_size=3,
            count=args.check_structures,
            nontrivial_constants=True,
        )
        violator = gadget.upper_bound_violation(stream)
        print(
            f"upper bound (<=) violated on sample: "
            f"{'yes' if violator is not None else 'no'}"
        )
    return 0


def _command_evaluate(args: argparse.Namespace) -> int:
    from repro.homomorphism.batch import count_many

    query = parse_query(args.query)
    structure = _parse_facts(args.facts)
    missing = [
        constant.name
        for constant in query.constants
        if not structure.interprets(constant.name)
    ]
    for name in missing:
        structure = structure.with_constant(name, name)
    [value] = count_many(
        [(query, structure)],
        engine=args.engine,
        workers=args.workers,
        cache=False if args.no_cache else None,
    )
    print(value)
    return 0


def _command_explain(args: argparse.Namespace) -> int:
    from repro.planner import PlanCache, plan

    query = parse_query(args.query)
    if args.facts is not None:
        structure = _parse_facts(args.facts)
        for constant in query.constants:
            if not structure.interprets(constant.name):
                structure = structure.with_constant(
                    constant.name, constant.name
                )
        source = f"inline database ({structure.fact_count()} facts)"
    else:
        structure = query.canonical_structure()
        source = f"canonical database ({structure.fact_count()} facts)"
    # A fresh cache keeps the hit/miss line meaningful for this query
    # alone: repeated components hit, everything else misses.
    chosen = plan(query, structure, cache=PlanCache())
    if args.json:
        from repro.obs.report import stable_json_dumps

        print(stable_json_dumps(chosen.to_dict()))
        return 0
    print(f"query: {query}")
    print(f"planned against: {source}, |domain| = {len(structure.domain)}")
    print(chosen.explain())
    return 0


def _parse_deltas(args: argparse.Namespace):
    """The mutation batch shared by ``update`` and ``call update``.

    ``--delta-file`` holds one io delta payload or a list of them (applied
    in order); ``--insert``/``--delete`` build one extra delta from
    ground-atom text.
    """
    import json
    from pathlib import Path

    from repro.io import delta_from_dict, ground_facts_from_text
    from repro.relational.structure import Delta

    deltas = []
    if args.delta_file is not None:
        payload = json.loads(Path(args.delta_file).read_text())
        entries = payload if isinstance(payload, list) else [payload]
        deltas.extend(delta_from_dict(entry) for entry in entries)
    if args.insert is not None or args.delete is not None:
        deltas.append(
            Delta(
                inserts=tuple(
                    ground_facts_from_text(args.insert)
                    if args.insert is not None
                    else ()
                ),
                deletes=tuple(
                    ground_facts_from_text(args.delete)
                    if args.delete is not None
                    else ()
                ),
            )
        )
    if not deltas:
        raise SystemExit("update needs --insert, --delete, or --delta-file")
    return deltas


def _command_update(args: argparse.Namespace) -> int:
    from repro.homomorphism.delta import DeltaEvaluator

    structure = _parse_facts(args.facts)
    query = parse_query(args.query) if args.query is not None else None
    if query is not None:
        for constant in query.constants:
            if not structure.interprets(constant.name):
                structure = structure.with_constant(
                    constant.name, constant.name
                )
    deltas = _parse_deltas(args)
    evaluator = DeltaEvaluator(structure, engine=args.engine)
    if query is not None:
        print(f"count@v0 = {evaluator.evaluate(query)}")
    for delta in deltas:
        report = evaluator.apply(delta)
        print(report.describe())
        if query is not None:
            print(
                f"count@v{report.version} = {evaluator.evaluate(query)}"
            )
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    if args.shards > 1:
        from repro.shard import RouterConfig, serve_sharded

        serve_sharded(
            RouterConfig(
                host=args.host,
                port=args.port,
                shards=args.shards,
                workers_per_shard=args.workers,
                queue_depth=args.queue_depth,
                default_deadline_ms=args.deadline_ms,
                coalesce=not args.no_coalesce,
                snapshot_dir=args.snapshot_dir,
            )
        )
        return 0
    from repro.service import ServerConfig, serve

    serve(
        ServerConfig(
            host=args.host,
            port=args.port,
            workers=args.workers,
            queue_depth=args.queue_depth,
            default_deadline_ms=args.deadline_ms,
            coalesce=not args.no_coalesce,
            snapshot_dir=args.snapshot_dir,
        )
    )
    return 0


def _command_snapshot(args: argparse.Namespace) -> int:
    from repro.obs.report import stable_json_dumps
    from repro.shard.worker import http_post_json

    result = http_post_json(
        f"{args.url.rstrip('/')}/snapshot", {}, timeout_s=args.timeout_s
    )
    print(stable_json_dumps(result))
    return 0


def _command_call(args: argparse.Namespace) -> int:
    from repro.obs.report import stable_json_dumps
    from repro.service import ServiceClient

    client = ServiceClient(args.url, retries=args.retries)
    endpoint = args.endpoint
    if endpoint == "healthz":
        print(stable_json_dumps(client.healthz()))
        return 0
    if endpoint == "metrics":
        print(stable_json_dumps(client.metrics()))
        return 0
    if endpoint == "traces":
        print(stable_json_dumps(client.traces()))
        return 0
    if endpoint == "snapshot":
        from repro.shard.worker import http_post_json

        print(
            stable_json_dumps(
                http_post_json(f"{args.url.rstrip('/')}/snapshot", {})
            )
        )
        return 0
    if endpoint == "evaluate":
        if args.query is None or (args.facts is None) == (args.db is None):
            raise SystemExit(
                "call evaluate needs --query plus exactly one of "
                "--facts or --db"
            )
        value = client.evaluate(
            args.query,
            args.facts,
            engine=args.engine,
            deadline_ms=args.deadline_ms,
            db=args.db,
        )
        print(value)
        return 0
    if endpoint == "db":
        if args.db is None or args.facts is None:
            raise SystemExit("call db needs --db and --facts")
        snapshot = client.load_db(
            args.db,
            args.facts,
            engine=args.engine,
            deadline_ms=args.deadline_ms,
        )
        print(stable_json_dumps(snapshot))
        return 0
    if endpoint == "update":
        if args.db is None:
            raise SystemExit("call update needs --db")
        for delta in _parse_deltas(args):
            report = client.update(
                args.db, delta=delta, deadline_ms=args.deadline_ms
            )
            print(stable_json_dumps(report))
        return 0
    if endpoint == "explain":
        if args.query is None:
            raise SystemExit("call explain needs --query")
        print(
            stable_json_dumps(
                client.explain(args.query, structure=args.facts)["plan"]
            )
        )
        return 0
    if endpoint == "contain":
        if not args.phi_s or not args.phi_b:
            raise SystemExit("call contain needs --phi-s and --phi-b")
        phi_s = args.phi_s[0] if len(args.phi_s) == 1 else list(args.phi_s)
        phi_b = args.phi_b[0] if len(args.phi_b) == 1 else list(args.phi_b)
        verdict = client.contain(
            phi_s,
            phi_b,
            engine=args.engine,
            witness=not args.no_witness,
            deadline_ms=args.deadline_ms,
        )
        print(stable_json_dumps(verdict))
        return 0
    if endpoint == "decide":
        if not args.phi_s or not args.phi_b:
            raise SystemExit("call decide needs --phi-s and --phi-b")
        verdict = client.decide(
            args.phi_s[0],
            args.phi_b[0],
            multiplier=args.multiplier,
            additive=args.additive,
            domain_size=args.domain_size,
            count=args.count,
            seed=args.seed,
            engine=args.engine,
            deadline_ms=args.deadline_ms,
        )
        print(stable_json_dumps(verdict))
        return 0
    raise SystemExit(f"unknown endpoint {endpoint!r}")


def _command_loadgen(args: argparse.Namespace) -> int:
    from repro.loadgen import (
        DEFAULT_SLOS,
        SCENARIO_NAMES,
        build_scenario,
        evaluate_slo,
        run_scenario,
    )
    from repro.obs.report import stable_json_dumps

    names = args.scenario or list(SCENARIO_NAMES)
    unknown = sorted(set(names) - set(SCENARIO_NAMES))
    if unknown:
        raise SystemExit(
            f"unknown scenario(s) {unknown}; choose from {list(SCENARIO_NAMES)}"
        )
    rows = []
    violations: list[str] = []
    for name in names:
        scenario = build_scenario(
            name, seed=args.seed, requests=args.requests, clients=args.clients
        )
        result = run_scenario(scenario, args.url)
        row = result.to_dict()
        rows.append(row)
        print(
            f"{row['scenario']:<18} {row['throughput_rps']:>9.2f} rps  "
            f"p50 {row['p50_ms'] or 0:>8.2f} ms  "
            f"p95 {row['p95_ms'] or 0:>8.2f} ms  "
            f"shed {row['shed_rate']:.2%}  "
            f"({row['completed']}/{row['requests']} ok, "
            f"{row['deadline_exceeded']} timed out)"
        )
        if args.check_slo and name in DEFAULT_SLOS:
            violations.extend(evaluate_slo(row, DEFAULT_SLOS[name]))
    document = {
        "experiment": "E18-load",
        "seed": args.seed,
        "requests": args.requests,
        "clients": args.clients,
        "scenarios": rows,
    }
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(stable_json_dumps(document))
            handle.write("\n")
        print(f"wrote {args.output}")
    if violations:
        for violation in violations:
            print(f"SLO VIOLATION: {violation}", file=sys.stderr)
        return 1
    return 0


def _command_slo(args: argparse.Namespace) -> int:
    import json as json_module

    from repro.loadgen import DEFAULT_SLOS, check_regression, evaluate_slo

    with open(args.run, encoding="utf-8") as handle:
        current = json_module.load(handle)
    violations: list[str] = []
    for row in current.get("scenarios", []):
        slo = DEFAULT_SLOS.get(row.get("scenario"))
        if slo is not None:
            violations.extend(evaluate_slo(row, slo))
    if args.baseline:
        with open(args.baseline, encoding="utf-8") as handle:
            baseline = json_module.load(handle)
        violations.extend(
            check_regression(
                current,
                baseline,
                p95_ratio=args.p95_ratio,
                throughput_ratio=args.throughput_ratio,
                p95_floor_ms=args.p95_floor_ms,
            )
        )
    if violations:
        for violation in violations:
            print(f"SLO VIOLATION: {violation}", file=sys.stderr)
        return 1
    print(f"{len(current.get('scenarios', []))} scenario(s) within objectives")
    return 0


def _command_calibrate(args: argparse.Namespace) -> int:
    from repro.loadgen import calibrate
    from repro.obs.report import stable_json_dumps

    constants = calibrate(
        case_count=args.cases, seed=args.seed, repeat=args.repeat
    )
    rendered = stable_json_dumps(constants.to_dict())
    print(rendered)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered)
            handle.write("\n")
        print(f"wrote {args.output}", file=sys.stderr)
    return 0


def _command_search(args: argparse.Namespace) -> int:
    from repro.decision.search import find_counterexample, random_structures
    from repro.errors import SearchBudgetExceeded

    phi_s = parse_query(args.phi_s)
    phi_b = parse_query(args.phi_b)
    schema = phi_s.schema.union(phi_b.schema)
    stream = random_structures(
        schema,
        domain_size=args.domain_size,
        density=args.density,
        count=args.count,
        seed=args.seed,
    )
    try:
        outcome = find_counterexample(
            phi_s,
            phi_b,
            stream,
            multiplier=args.multiplier,
            additive=args.additive,
            max_candidates=args.max_candidates,
            engine=args.engine,
            workers=args.workers,
            batch_size=args.batch_size,
            cache=False if args.no_cache else None,
        )
    except SearchBudgetExceeded as error:
        print(f"budget exceeded: {error}")
        return 2
    if outcome.found:
        print(
            f"counterexample after {outcome.checked} candidates: "
            f"{args.multiplier}*phi_s(D) = {outcome.lhs} > "
            f"phi_b(D) + {args.additive} = {outcome.rhs} "
            f"(|domain| = {len(outcome.counterexample.domain)}, "
            f"{outcome.counterexample.fact_count()} facts)"
        )
        return 0
    print(f"no counterexample in {outcome.checked} candidates")
    return 0


def _command_contain(args: argparse.Namespace) -> int:
    from repro.containment_set import cq_containment, ucq_containment
    from repro.obs.report import stable_json_dumps

    left = [parse_query(text) for text in args.phi_s]
    right = [parse_query(text) for text in args.phi_b]
    want_witness = not args.no_witness
    if len(left) == 1 and len(right) == 1:
        kind = "cq"
        verdict = cq_containment(
            left[0], right[0], engine=args.engine, want_witness=want_witness
        )
    else:
        kind = "ucq"
        verdict = ucq_containment(
            left, right, engine=args.engine, want_witness=want_witness
        )
    if args.json:
        print(stable_json_dumps({"kind": kind, **verdict.to_dict()}))
        return 0
    relation = "⊆" if verdict.contained else "⊄"
    print(f"phi_s {relation} phi_b under set semantics [engine: {args.engine}]")
    if kind == "cq":
        if verdict.contained and verdict.witness is not None:
            for variable, target in verdict.witness:
                print(f"  witness: {variable.name} -> {target}")
    else:
        for entry in verdict.coverage:
            if entry.covered:
                print(
                    f"  disjunct {entry.disjunct} ⊆ container {entry.container}"
                )
            else:
                print(f"  disjunct {entry.disjunct} uncovered")
    if not verdict.contained and verdict.certificate is not None:
        certificate = verdict.certificate
        print(
            f"  certificate: canonical(phi_s) with phi_s = {certificate.lhs} "
            f"> phi_b = {certificate.rhs} "
            f"(|domain| = {len(certificate.structure.domain)}, "
            f"{certificate.structure.fact_count()} facts)"
        )
    return 0


def _command_fuzz(args: argparse.Namespace) -> int:
    from repro.qa import oracle_names, run_fuzz

    if args.max_cases is not None and args.max_cases < 0:
        raise SystemExit(f"--max-cases must be >= 0, got {args.max_cases}")
    if args.budget_seconds is not None and args.budget_seconds < 0:
        raise SystemExit(
            f"--budget-seconds must be >= 0, got {args.budget_seconds}"
        )
    if args.oracle:
        unknown = sorted(set(args.oracle) - set(oracle_names()))
        if unknown:
            raise SystemExit(
                f"unknown oracle(s) {unknown}; choose from {sorted(oracle_names())}"
            )
    report = run_fuzz(
        max_cases=args.max_cases,
        budget_seconds=args.budget_seconds,
        seed=args.seed,
        oracles=args.oracle or None,
        corpus_dir=args.corpus,
        shrink=not args.no_shrink,
    )
    print(report.describe())
    if not report.ok:
        for finding in report.findings:
            if finding.corpus_path is not None:
                print(f"minimized finding written to {finding.corpus_path}")
        return 1
    return 0


def _command_core(args: argparse.Namespace) -> int:
    from repro.decision import core

    query = parse_query(args.query)
    minimized = core(query)
    print(minimized)
    if minimized.atom_count < query.atom_count:
        print(
            f"# dropped {query.atom_count - minimized.atom_count} redundant "
            "atom(s) — set-equivalent, NOT bag-equivalent (Chaudhuri-Vardi)",
        )
    else:
        print("# already a core")
    return 0


def _command_equivalent(args: argparse.Namespace) -> int:
    from repro.decision import bag_equivalent, set_equivalent

    left = parse_query(args.left)
    right = parse_query(args.right)
    bag = bag_equivalent(left, right)
    print(f"bag-equivalent (iff isomorphic): {bag}")
    if not left.has_inequalities() and not right.has_inequalities():
        print(f"set-equivalent (Chandra-Merlin): {set_equivalent(left, right)}")
    return 0


def _command_answers(args: argparse.Namespace) -> int:
    from repro.queries import OpenQuery

    body = parse_query(args.query)
    head = tuple(name.strip() for name in args.head.split(",") if name.strip())
    open_query = OpenQuery(body, head)
    structure = _parse_facts(args.facts)
    for name in (c.name for c in body.constants):
        if not structure.interprets(name):
            structure = structure.with_constant(name, name)
    for answer, multiplicity in sorted(
        open_query.answers(structure).items(), key=lambda kv: repr(kv[0])
    ):
        rendered = ", ".join(str(value) for value in answer)
        print(f"({rendered}) x{multiplicity}")
    return 0


def _command_verify_paper(args: argparse.Namespace) -> int:
    from repro.paper import verify_all

    failures = 0
    for claim, passed in verify_all():
        status = "ok " if passed else "FAIL"
        print(f"[{status}] {claim.claim_id:<22} {claim.statement}")
        if not passed:
            failures += 1
    print()
    if failures:
        print(f"{failures} claim(s) FAILED")
        return 1
    print("every registered claim of the paper verifies")
    return 0


def _command_compare(args: argparse.Namespace) -> int:
    from repro.baselines.jkv import comparison_row, format_comparison_table
    from repro.core.theorem3 import theorem3_reduction
    from repro.polynomials import Lemma11Instance, Monomial

    minimal = Lemma11Instance(
        c=2,
        monomials=(Monomial.of(1),),
        s_coefficients=(1,),
        b_coefficients=(1,),
    )
    rows = [comparison_row("minimal (materialized)", theorem3_reduction(minimal))]
    print(format_comparison_table(rows))
    return 0


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="bagcq",
        description="Bag-semantics CQ containment: gadgets and reductions "
        "from Marcinkowski & Orda, PODS 2024.",
    )
    # Observability flags are shared by every subcommand (argparse parents),
    # so both ``bagcq reduce … --stats`` and ``bagcq evaluate … --stats``
    # parse naturally.
    obs_flags = argparse.ArgumentParser(add_help=False)
    obs_flags.add_argument(
        "--stats",
        action="store_true",
        help="print an observability report (spans + counters) to stderr",
    )
    obs_flags.add_argument(
        "--stats-json",
        metavar="PATH",
        default=None,
        help="write the observability report as stable JSON to PATH",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    reduce_parser = sub.add_parser(
        "reduce", help="run the full reduction pipeline", parents=[obs_flags]
    )
    reduce_parser.add_argument("--instance", required=True, help="e.g. pell_nontrivial:2")
    reduce_parser.add_argument("--grid", type=int, default=2, help="valuation grid bound")
    reduce_parser.set_defaults(handler=_command_reduce)

    gadget_parser = sub.add_parser(
        "gadget", help="build and verify an alpha gadget", parents=[obs_flags]
    )
    gadget_parser.add_argument("--c", type=int, required=True)
    gadget_parser.add_argument("--check-structures", type=int, default=0)
    gadget_parser.set_defaults(handler=_command_gadget)

    evaluate_parser = sub.add_parser(
        "evaluate", help="count homomorphisms", parents=[obs_flags]
    )
    evaluate_parser.add_argument("--query", required=True)
    evaluate_parser.add_argument("--facts", required=True)
    evaluate_parser.add_argument(
        "--engine",
        choices=("auto", "backtracking", "treewidth", "acyclic", "compiled"),
        default="auto",
        help="counting engine; 'auto' (default) plans per component",
    )
    evaluate_parser.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        help="fan component evaluation across a process pool (default: 1, serial)",
    )
    evaluate_parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the canonicalization-keyed component count cache",
    )
    evaluate_parser.set_defaults(handler=_command_evaluate)

    explain_parser = sub.add_parser(
        "explain",
        help="print the auto engine's evaluation plan for a query",
        parents=[obs_flags],
    )
    explain_parser.add_argument("--query", required=True)
    explain_parser.add_argument(
        "--facts",
        default=None,
        help="inline database to plan against (default: the query's "
        "canonical database)",
    )
    explain_parser.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable plan (the same stable JSON the "
        "service /explain endpoint returns)",
    )
    explain_parser.set_defaults(handler=_command_explain)

    update_parser = sub.add_parser(
        "update",
        help="apply deltas to an inline database and recount incrementally",
        parents=[obs_flags],
    )
    update_parser.add_argument(
        "--query",
        default=None,
        help="optional query recounted after every delta",
    )
    update_parser.add_argument("--facts", required=True)
    update_parser.add_argument(
        "--insert",
        default=None,
        help="ground atoms to insert, e.g. 'E(a,b); E(b,c)'",
    )
    update_parser.add_argument(
        "--delete", default=None, help="ground atoms to delete"
    )
    update_parser.add_argument(
        "--delta-file",
        default=None,
        help="JSON file with one io delta payload or a list, applied in order",
    )
    update_parser.add_argument(
        "--engine",
        choices=("auto", "backtracking", "treewidth", "acyclic", "compiled"),
        default="auto",
    )
    update_parser.set_defaults(handler=_command_update)

    serve_parser = sub.add_parser(
        "serve",
        help="run the long-lived evaluation daemon (repro.service)",
        parents=[obs_flags],
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument(
        "--port", type=int, default=8642, help="0 picks an ephemeral port"
    )
    serve_parser.add_argument(
        "--workers", type=_positive_int, default=4, help="evaluation threads"
    )
    serve_parser.add_argument(
        "--queue-depth",
        type=_positive_int,
        default=64,
        help="admission bound; beyond it requests are shed with 429",
    )
    serve_parser.add_argument(
        "--deadline-ms",
        type=_positive_int,
        default=30_000,
        help="default per-request deadline",
    )
    serve_parser.add_argument(
        "--no-coalesce",
        action="store_true",
        help="disable single-flight coalescing of identical requests",
    )
    serve_parser.add_argument(
        "--shards",
        type=_positive_int,
        default=1,
        help="worker subprocesses behind a consistent-hash router "
        "(1 = classic single-process server)",
    )
    serve_parser.add_argument(
        "--snapshot-dir",
        default=None,
        metavar="DIR",
        help="durable cache tier: warm-start from DIR and write through "
        "to it (with --shards each worker gets DIR/shard-NN)",
    )
    serve_parser.set_defaults(handler=_command_serve)

    snapshot_parser = sub.add_parser(
        "snapshot",
        help="persist a running daemon's caches to its snapshot directory",
        parents=[obs_flags],
    )
    snapshot_parser.add_argument(
        "--url", default="http://127.0.0.1:8642", help="service base URL"
    )
    snapshot_parser.add_argument(
        "--timeout-s", type=float, default=60.0, help="request timeout"
    )
    snapshot_parser.set_defaults(handler=_command_snapshot)

    call_parser = sub.add_parser(
        "call",
        help="call a running bagcq service from the shell",
        parents=[obs_flags],
    )
    call_parser.add_argument(
        "endpoint",
        choices=(
            "evaluate",
            "explain",
            "decide",
            "contain",
            "db",
            "update",
            "healthz",
            "metrics",
            "traces",
            "snapshot",
        ),
    )
    call_parser.add_argument(
        "--url", default="http://127.0.0.1:8642", help="service base URL"
    )
    call_parser.add_argument("--query", default=None)
    call_parser.add_argument("--facts", default=None)
    call_parser.add_argument(
        "--db",
        default=None,
        help="named server-resident database (evaluate/db/update)",
    )
    call_parser.add_argument(
        "--insert",
        default=None,
        help="update only: ground atoms to insert, e.g. 'E(a,b); E(b,c)'",
    )
    call_parser.add_argument(
        "--delete",
        default=None,
        help="update only: ground atoms to delete",
    )
    call_parser.add_argument(
        "--delta-file",
        default=None,
        help="update only: JSON file with one io delta payload or a list",
    )
    call_parser.add_argument(
        "--phi-s",
        action="append",
        default=None,
        help="smaller-side query; repeat for a union (contain only)",
    )
    call_parser.add_argument(
        "--phi-b",
        action="append",
        default=None,
        help="bigger-side query; repeat for a union (contain only)",
    )
    call_parser.add_argument(
        "--no-witness",
        action="store_true",
        help="contain only: skip the witness homomorphism",
    )
    call_parser.add_argument(
        "--engine",
        choices=("auto", "backtracking", "treewidth", "acyclic", "compiled"),
        default="auto",
    )
    call_parser.add_argument("--multiplier", type=int, default=1)
    call_parser.add_argument("--additive", type=int, default=0)
    call_parser.add_argument("--domain-size", type=int, default=3)
    call_parser.add_argument("--count", type=int, default=100)
    call_parser.add_argument("--seed", type=int, default=0)
    call_parser.add_argument("--deadline-ms", type=int, default=None)
    call_parser.add_argument(
        "--retries", type=int, default=4, help="client retry budget"
    )
    call_parser.set_defaults(handler=_command_call)

    loadgen_parser = sub.add_parser(
        "loadgen",
        help="replay seeded traffic scenarios against a running daemon",
        parents=[obs_flags],
    )
    loadgen_parser.add_argument(
        "--url", default="http://127.0.0.1:8642", help="service base URL"
    )
    loadgen_parser.add_argument(
        "--scenario",
        action="append",
        default=None,
        metavar="NAME",
        help="scenario to replay (repeatable; default: all of them)",
    )
    loadgen_parser.add_argument(
        "--requests", type=_positive_int, default=120, help="requests per scenario"
    )
    loadgen_parser.add_argument(
        "--clients", type=_positive_int, default=4, help="concurrent workers"
    )
    loadgen_parser.add_argument("--seed", type=int, default=0)
    loadgen_parser.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="write the BENCH_load-shaped JSON document to PATH",
    )
    loadgen_parser.add_argument(
        "--check-slo",
        action="store_true",
        help="exit non-zero when a scenario misses its declared objectives",
    )
    loadgen_parser.set_defaults(handler=_command_loadgen)

    slo_parser = sub.add_parser(
        "slo",
        help="judge a recorded load run against objectives and a baseline",
        parents=[obs_flags],
    )
    slo_parser.add_argument(
        "--run", required=True, metavar="PATH", help="BENCH_load-shaped JSON"
    )
    slo_parser.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="checked-in baseline to gate regressions against",
    )
    slo_parser.add_argument(
        "--p95-ratio",
        type=float,
        default=1.5,
        help="allowed p95 growth vs baseline (default 1.5x)",
    )
    slo_parser.add_argument(
        "--throughput-ratio",
        type=float,
        default=0.6,
        help="required throughput vs baseline (default 60%%)",
    )
    slo_parser.add_argument(
        "--p95-floor-ms",
        type=float,
        default=5.0,
        help="ignore p95 regressions below this absolute latency "
        "(default 5 ms; raise on noisy shared runners)",
    )
    slo_parser.set_defaults(handler=_command_slo)

    calibrate_parser = sub.add_parser(
        "calibrate",
        help="fit the planner's per-engine cost scales on this machine",
        parents=[obs_flags],
    )
    calibrate_parser.add_argument(
        "--cases", type=_positive_int, default=40, help="cq cases to measure"
    )
    calibrate_parser.add_argument(
        "--repeat", type=_positive_int, default=3, help="evaluations per sample"
    )
    calibrate_parser.add_argument("--seed", type=int, default=0)
    calibrate_parser.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="also write the constants JSON to PATH",
    )
    calibrate_parser.set_defaults(handler=_command_calibrate)

    search_parser = sub.add_parser(
        "search",
        help="search random databases for a containment counterexample",
        parents=[obs_flags],
    )
    search_parser.add_argument("--phi-s", required=True, help="smaller-side query")
    search_parser.add_argument("--phi-b", required=True, help="bigger-side query")
    search_parser.add_argument("--multiplier", type=int, default=1)
    search_parser.add_argument("--additive", type=int, default=0)
    search_parser.add_argument("--domain-size", type=int, default=3)
    search_parser.add_argument("--density", type=float, default=0.3)
    search_parser.add_argument(
        "--count", type=int, default=100, help="candidate databases to draw"
    )
    search_parser.add_argument("--seed", type=int, default=0)
    search_parser.add_argument("--max-candidates", type=int, default=None)
    search_parser.add_argument(
        "--engine",
        choices=("auto", "backtracking", "treewidth", "acyclic", "compiled"),
        default="auto",
        help="counting engine; 'auto' (default) plans per component",
    )
    search_parser.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        help="fan batched candidate checking across a process pool",
    )
    search_parser.add_argument(
        "--batch-size",
        type=_positive_int,
        default=None,
        help="candidates per count_many generation (implies batched checking)",
    )
    search_parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the canonicalization-keyed component count cache",
    )
    search_parser.set_defaults(handler=_command_search)

    contain_parser = sub.add_parser(
        "contain",
        help="decide set-semantics containment (Chandra-Merlin / all-any)",
        parents=[obs_flags],
    )
    contain_parser.add_argument(
        "--phi-s",
        action="append",
        required=True,
        help="contained-side query; repeat for a union's disjuncts",
    )
    contain_parser.add_argument(
        "--phi-b",
        action="append",
        required=True,
        help="containing-side query; repeat for a union's disjuncts",
    )
    contain_parser.add_argument(
        "--engine",
        choices=("auto", "backtracking", "treewidth", "acyclic", "compiled"),
        default="auto",
        help="counting engine for the homomorphism test",
    )
    contain_parser.add_argument(
        "--no-witness",
        action="store_true",
        help="skip the witness homomorphism on positive verdicts",
    )
    contain_parser.add_argument(
        "--json",
        action="store_true",
        help="print the full verdict (witness/certificate) as JSON",
    )
    contain_parser.set_defaults(handler=_command_contain)

    fuzz_parser = sub.add_parser(
        "fuzz",
        help="differential fuzzing with paper-lemma oracles (repro.qa)",
        parents=[obs_flags],
    )
    fuzz_parser.add_argument(
        "--max-cases",
        type=int,
        default=None,
        help="cases to generate (default 500 when no time budget is given)",
    )
    fuzz_parser.add_argument(
        "--budget-seconds",
        type=float,
        default=None,
        help="wall-clock budget; fuzzing stops at whichever limit hits first",
    )
    fuzz_parser.add_argument("--seed", type=int, default=0)
    fuzz_parser.add_argument(
        "--oracle",
        action="append",
        default=None,
        metavar="NAME",
        help="restrict to this oracle (repeatable; default: all registered)",
    )
    fuzz_parser.add_argument(
        "--corpus",
        default=None,
        metavar="DIR",
        help="replay this corpus first and write minimized findings into it",
    )
    fuzz_parser.add_argument(
        "--no-shrink",
        action="store_true",
        help="report raw failing cases without delta-debugging them",
    )
    fuzz_parser.set_defaults(handler=_command_fuzz)

    compare_parser = sub.add_parser(
        "compare",
        help="inequality budget vs Jayram-Kolaitis-Vee",
        parents=[obs_flags],
    )
    compare_parser.set_defaults(handler=_command_compare)

    verify_parser = sub.add_parser(
        "verify-paper",
        help="run the executable registry of the paper's claims",
        parents=[obs_flags],
    )
    verify_parser.set_defaults(handler=_command_verify_paper)

    core_parser = sub.add_parser(
        "core",
        help="set-semantics core of a conjunctive query",
        parents=[obs_flags],
    )
    core_parser.add_argument("--query", required=True)
    core_parser.set_defaults(handler=_command_core)

    equivalent_parser = sub.add_parser(
        "equivalent",
        help="bag/set equivalence of two queries",
        parents=[obs_flags],
    )
    equivalent_parser.add_argument("--left", required=True)
    equivalent_parser.add_argument("--right", required=True)
    equivalent_parser.set_defaults(handler=_command_equivalent)

    answers_parser = sub.add_parser(
        "answers",
        help="answer multiset of an open query on an inline database",
        parents=[obs_flags],
    )
    answers_parser.add_argument("--query", required=True)
    answers_parser.add_argument("--head", required=True, help="e.g. 'x,y'")
    answers_parser.add_argument("--facts", required=True)
    answers_parser.set_defaults(handler=_command_answers)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    stats_json = getattr(args, "stats_json", None)
    if not (getattr(args, "stats", False) or stats_json):
        try:
            return args.handler(args)
        except BagCQError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1

    from repro.obs import observe, span

    # The report is emitted even when the command fails — budget
    # exhaustion and mid-evaluation errors are exactly when the counters
    # explain what happened.
    with observe() as observation:
        with span(f"cli.{args.command}"):
            try:
                exit_code = args.handler(args)
            except BagCQError as error:
                print(f"error: {error}", file=sys.stderr)
                exit_code = 1
    if getattr(args, "stats", False):
        print(observation.render_text(), file=sys.stderr)
    if stats_json:
        with open(stats_json, "w", encoding="utf-8") as handle:
            handle.write(observation.render_json())
            handle.write("\n")
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
