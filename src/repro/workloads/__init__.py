"""Workload generators for tests and benchmarks."""

from repro.workloads.random_queries import (
    path_query,
    random_queries,
    random_query,
    star_query,
)

__all__ = ["path_query", "random_queries", "random_query", "star_query"]
