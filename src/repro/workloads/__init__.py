"""Workload generators for tests and benchmarks."""

from repro.workloads.random_queries import (
    cycle_query,
    path_query,
    random_queries,
    random_query,
    star_query,
)

__all__ = [
    "cycle_query",
    "path_query",
    "random_queries",
    "random_query",
    "star_query",
]
