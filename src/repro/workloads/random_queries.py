"""Random conjunctive-query generators for tests and benchmarks.

Reproducible (seeded) generators producing queries of controlled shape:
arbitrary random CQs, connected CQs, paths, cycles and stars — the shapes
that appear throughout the paper's constructions (rays and stars in
Section 4.3, cycles in Section 4.6).
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.queries.atoms import Atom, Inequality
from repro.queries.cq import ConjunctiveQuery
from repro.queries.terms import Variable
from repro.relational.schema import Schema

__all__ = [
    "random_query",
    "random_queries",
    "path_query",
    "star_query",
]


def random_query(
    schema: Schema,
    variable_count: int,
    atom_count: int,
    inequality_count: int = 0,
    seed: int = 0,
) -> ConjunctiveQuery:
    """A random CQ over ``schema`` with the given shape parameters."""
    rng = random.Random(seed)
    variables = [Variable(f"q{i}") for i in range(variable_count)]
    symbols = list(schema)
    atoms = []
    for _ in range(atom_count):
        symbol = rng.choice(symbols)
        atoms.append(
            Atom(symbol.name, tuple(rng.choice(variables) for _ in range(symbol.arity)))
        )
    inequalities = []
    for _ in range(inequality_count):
        if len(variables) >= 2:
            left, right = rng.sample(variables, 2)
            inequalities.append(Inequality(left, right))
    return ConjunctiveQuery(atoms, inequalities)


def random_queries(
    schema: Schema,
    count: int,
    variable_count: int = 4,
    atom_count: int = 5,
    inequality_count: int = 0,
    seed: int = 0,
) -> Iterator[ConjunctiveQuery]:
    """A reproducible stream of random CQs."""
    for offset in range(count):
        yield random_query(
            schema,
            variable_count=variable_count,
            atom_count=atom_count,
            inequality_count=inequality_count,
            seed=seed + offset,
        )


def path_query(length: int, relation: str = "E", prefix: str = "p") -> ConjunctiveQuery:
    """The directed path ``E(p₀,p₁) ∧ … ∧ E(p_{l−1}, p_l)``."""
    if length < 1:
        raise ValueError(f"path length must be >= 1, got {length}")
    variables = [Variable(f"{prefix}{i}") for i in range(length + 1)]
    return ConjunctiveQuery(
        Atom(relation, (variables[i], variables[i + 1])) for i in range(length)
    )


def star_query(rays: int, relation: str = "E", prefix: str = "s") -> ConjunctiveQuery:
    """A star with ``rays`` out-edges from a shared centre."""
    if rays < 1:
        raise ValueError(f"a star needs at least one ray, got {rays}")
    centre = Variable(f"{prefix}_centre")
    return ConjunctiveQuery(
        Atom(relation, (centre, Variable(f"{prefix}{i}"))) for i in range(rays)
    )
