"""Random conjunctive-query generators for tests and benchmarks.

Reproducible (seeded) generators producing queries of controlled shape:
arbitrary random CQs, connected CQs, paths, cycles and stars — the shapes
that appear throughout the paper's constructions (rays and stars in
Section 4.3, cycles in Section 4.6).
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.queries.atoms import Atom, Inequality
from repro.queries.cq import ConjunctiveQuery
from repro.queries.terms import Variable
from repro.relational.schema import Schema

__all__ = [
    "random_query",
    "random_queries",
    "path_query",
    "cycle_query",
    "star_query",
]


def random_query(
    schema: Schema,
    variable_count: int,
    atom_count: int,
    inequality_count: int = 0,
    seed: int = 0,
) -> ConjunctiveQuery:
    """A random CQ over ``schema`` with the given shape parameters.

    Inequalities relate two *distinct* variables, so requesting any with
    fewer than two variables is a contradiction and raises ``ValueError``
    (it used to silently return a query without them).

    Whenever the requested shape has room for it — i.e.
    ``atom_count * max_arity >= variable_count`` — every declared variable
    is guaranteed to occur in at least one atom: variables are first
    assigned to distinct randomly-chosen argument slots, and only the
    remaining slots are filled independently.  (Unused variables used to
    be dropped silently, skewing generated queries smaller than
    requested.)  When the shape genuinely cannot fit all variables, the
    extra ones simply stay unused, as before.
    """
    if inequality_count > 0 and variable_count < 2:
        raise ValueError(
            f"cannot place {inequality_count} inequalit"
            f"{'y' if inequality_count == 1 else 'ies'} with only "
            f"{variable_count} variable(s); inequalities need two distinct "
            "variables"
        )
    rng = random.Random(seed)
    variables = [Variable(f"q{i}") for i in range(variable_count)]
    symbols = list(schema)
    chosen = [rng.choice(symbols) for _ in range(atom_count)]
    capacity = sum(symbol.arity for symbol in chosen)
    if variables and capacity < variable_count:
        # Upgrade the narrowest picks to the widest symbol until every
        # variable fits (when the shape allows it at all).
        widest = max(symbols, key=lambda symbol: (symbol.arity, symbol.name))
        for position in sorted(
            range(len(chosen)), key=lambda i: (chosen[i].arity, i)
        ):
            if capacity >= variable_count:
                break
            capacity += widest.arity - chosen[position].arity
            chosen[position] = widest
    slots = [
        (index, position)
        for index, symbol in enumerate(chosen)
        for position in range(symbol.arity)
    ]
    placed: dict[tuple[int, int], Variable] = {}
    if variables and len(slots) >= variable_count:
        for variable, slot in zip(variables, rng.sample(slots, variable_count)):
            placed[slot] = variable
    atoms = [
        Atom(
            symbol.name,
            tuple(
                placed.get((index, position), None) or rng.choice(variables)
                for position in range(symbol.arity)
            ),
        )
        for index, symbol in enumerate(chosen)
    ]
    inequalities = []
    for _ in range(inequality_count):
        left, right = rng.sample(variables, 2)
        inequalities.append(Inequality(left, right))
    return ConjunctiveQuery(atoms, inequalities)


def random_queries(
    schema: Schema,
    count: int,
    variable_count: int = 4,
    atom_count: int = 5,
    inequality_count: int = 0,
    seed: int = 0,
) -> Iterator[ConjunctiveQuery]:
    """A reproducible stream of random CQs."""
    for offset in range(count):
        yield random_query(
            schema,
            variable_count=variable_count,
            atom_count=atom_count,
            inequality_count=inequality_count,
            seed=seed + offset,
        )


def path_query(length: int, relation: str = "E", prefix: str = "p") -> ConjunctiveQuery:
    """The directed path ``E(p₀,p₁) ∧ … ∧ E(p_{l−1}, p_l)``."""
    if length < 1:
        raise ValueError(f"path length must be >= 1, got {length}")
    variables = [Variable(f"{prefix}{i}") for i in range(length + 1)]
    return ConjunctiveQuery(
        Atom(relation, (variables[i], variables[i + 1])) for i in range(length)
    )


def cycle_query(length: int, relation: str = "E", prefix: str = "c") -> ConjunctiveQuery:
    """The directed ``length``-cycle ``E(c₀,c₁) ∧ … ∧ E(c_{l−1}, c₀)``.

    ``length = 1`` is the self-loop query ``E(c₀, c₀)``.  Like every CQ it
    counts *homomorphic images* — closed walks of length ``l`` — not just
    simple cycles (the δ gadgets of Section 4.6 rely on exactly this).
    """
    if length < 1:
        raise ValueError(f"cycle length must be >= 1, got {length}")
    variables = [Variable(f"{prefix}{i}") for i in range(length)]
    return ConjunctiveQuery(
        Atom(relation, (variables[i], variables[(i + 1) % length]))
        for i in range(length)
    )


def star_query(rays: int, relation: str = "E", prefix: str = "s") -> ConjunctiveQuery:
    """A star with ``rays`` out-edges from a shared centre."""
    if rays < 1:
        raise ValueError(f"a star needs at least one ray, got {rays}")
    centre = Variable(f"{prefix}_centre")
    return ConjunctiveQuery(
        Atom(relation, (centre, Variable(f"{prefix}{i}"))) for i in range(rays)
    )
