"""CQ ⊆ CQ under set semantics: the Chandra–Merlin homomorphism test.

``φ_s ⊆_set φ_b`` — every database satisfying ``φ_s`` satisfies ``φ_b``
— holds iff ``Hom(φ_b, canonical(φ_s)) ≠ ∅`` [Chandra & Merlin 1977].
The test here is phrased as a *count*, ``φ_b(canonical(φ_s)) > 0``, so
the question dispatches through :func:`repro.homomorphism.engine.count`
and any of the four engines (``backtracking``, ``treewidth``,
``acyclic``, ``compiled``) or the planner-driven ``auto`` can answer it.
The verdict is engine-independent; so is the witness, which is always
the first homomorphism of the deterministic backtracking enumeration.

Two artifacts make a verdict checkable:

* **Witness** (positive verdict): a homomorphism ``φ_b → canonical(φ_s)``,
  i.e. a map from ``φ_b``'s variables to ``φ_s``'s terms.
* **Absence certificate** (negative verdict): ``canonical(φ_s)`` itself,
  on which ``φ_s`` counts ``≥ 1`` (the identity embedding) while ``φ_b``
  counts ``0``.  The same structure is therefore also a *bag*-semantics
  counterexample — the soundness bridge the
  :mod:`repro.decision.search` prescreen stands on.

Error classes match direct engine evaluation: queries with inequalities
raise :class:`~repro.errors.QueryError` (the classical test does not
apply to them), unknown engine names raise
:class:`~repro.errors.EvaluationError` before any work happens, and a
``φ_b`` constant that ``canonical(φ_s)`` does not interpret raises
:class:`~repro.errors.ConstantError` exactly as ``count`` would.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.containment_set.cache import ContainmentCache, containment_cache_key
from repro.errors import QueryError
from repro.homomorphism.backtracking import enumerate_homomorphisms
from repro.homomorphism.cache import CountCache
from repro.homomorphism.engine import _resolve_engine, count
from repro.io import structure_to_dict
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span
from repro.queries.cq import ConjunctiveQuery
from repro.queries.terms import Constant, Term, Variable
from repro.relational.structure import Structure

__all__ = [
    "AbsenceCertificate",
    "CQContainment",
    "cq_containment",
    "cq_contained",
    "encode_witness",
]


def _encode_term(term) -> dict:
    kind = "const" if isinstance(term, Constant) else "var"
    return {"kind": kind, "name": term.name}


def encode_witness(witness: tuple[tuple[Variable, Term], ...] | None):
    """The wire form of a witness: variable name → encoded target term."""
    if witness is None:
        return None
    return {
        variable.name: _encode_term(target) for variable, target in witness
    }


@dataclass(frozen=True)
class AbsenceCertificate:
    """Evidence that ``φ_s ⊄ φ_b``: a database separating the two.

    ``structure`` is ``canonical(φ_s)``; ``lhs = φ_s(structure) ≥ 1`` and
    ``rhs = φ_b(structure) = 0``, so the certificate refutes *bag*
    containment (any ``multiplier ≥ 1``, ``additive ≤ 0``) as well.
    """

    structure: Structure
    lhs: int
    rhs: int

    def to_dict(self) -> dict:
        return {
            "structure": structure_to_dict(self.structure),
            "lhs": self.lhs,
            "rhs": self.rhs,
        }


@dataclass(frozen=True)
class CQContainment:
    """One answered containment question, with its checkable evidence."""

    contained: bool
    engine: str
    witness: tuple[tuple[Variable, Term], ...] | None
    certificate: AbsenceCertificate | None

    def witness_mapping(self) -> dict[Variable, Term] | None:
        return dict(self.witness) if self.witness is not None else None

    def to_dict(self) -> dict:
        return {
            "contained": self.contained,
            "engine": self.engine,
            "witness": encode_witness(self.witness),
            "certificate": (
                self.certificate.to_dict()
                if self.certificate is not None
                else None
            ),
        }


def _require_plain_cq(query, side: str) -> ConjunctiveQuery:
    if not isinstance(query, ConjunctiveQuery):
        raise QueryError(
            f"set-semantics containment needs plain conjunctive queries; "
            f"{side} is {type(query).__name__}"
        )
    if query.has_inequalities():
        raise QueryError(
            f"the Chandra-Merlin test applies to CQs without inequalities; "
            f"{side} has {query.inequality_count}"
        )
    return query


def _first_homomorphism(
    phi_b: ConjunctiveQuery, canonical: Structure
) -> tuple[tuple[Variable, Term], ...]:
    mapping = next(enumerate_homomorphisms(phi_b, canonical))
    return tuple(
        sorted(mapping.items(), key=lambda item: item[0].name)
    )


def cq_containment(
    phi_s: ConjunctiveQuery,
    phi_b: ConjunctiveQuery,
    engine: str = "auto",
    cache: ContainmentCache | None = None,
    count_cache: CountCache | None = None,
    want_witness: bool = True,
) -> CQContainment:
    """Decide ``φ_s ⊆_set φ_b`` and package the evidence.

    ``engine`` names the counting engine for the homomorphism test
    (``"auto"`` routes through the planner).  ``cache`` reuses verdicts
    across α-equivalent pairs; ``count_cache`` additionally shares the
    underlying component counts.  ``want_witness=False`` skips the
    witness enumeration on positive verdicts — the prescreen's choice,
    which only needs the boolean.

    Records a ``contain.cq`` span and ``contain.*`` counters under an
    active :func:`repro.obs.observe` scope.
    """
    _resolve_engine(engine)
    phi_s = _require_plain_cq(phi_s, "phi_s")
    phi_b = _require_plain_cq(phi_b, "phi_b")

    with span("contain.cq", engine=engine) as current:
        obs_metrics.add("contain.cq_tests")
        key = containment_cache_key(phi_s, phi_b, engine)
        cached = cache.lookup(key) if cache is not None else None
        canonical = phi_s.canonical_structure()
        if cached is not None:
            contained, phi_s_count = cached
        else:
            obs_metrics.add("contain.hom_tests")
            contained = (
                count(phi_b, canonical, engine=engine, cache=count_cache) > 0
            )
            # The certificate price φ_s(canonical(φ_s)) is α-invariant,
            # so it rides in the cache entry; witnesses do not (they name
            # the original variables) and are re-enumerated per call.
            phi_s_count = (
                count(phi_s, canonical, engine=engine, cache=count_cache)
                if not contained
                else None
            )
            if cache is not None:
                cache.store(key, (contained, phi_s_count))

        if contained:
            obs_metrics.add("contain.verdicts.contained")
            witness = (
                _first_homomorphism(phi_b, canonical) if want_witness else None
            )
            current.set(contained=True)
            return CQContainment(
                contained=True, engine=engine, witness=witness, certificate=None
            )
        obs_metrics.add("contain.verdicts.not_contained")
        current.set(contained=False)
        return CQContainment(
            contained=False,
            engine=engine,
            witness=None,
            certificate=AbsenceCertificate(
                structure=canonical, lhs=phi_s_count, rhs=0
            ),
        )


def cq_contained(
    phi_s: ConjunctiveQuery,
    phi_b: ConjunctiveQuery,
    engine: str = "auto",
    cache: ContainmentCache | None = None,
    count_cache: CountCache | None = None,
) -> bool:
    """Boolean form of :func:`cq_containment` (no witness enumeration)."""
    return cq_containment(
        phi_s,
        phi_b,
        engine=engine,
        cache=cache,
        count_cache=count_cache,
        want_witness=False,
    ).contained
