"""A canonicalization-keyed LRU cache for set-containment verdicts.

Containment questions repeat just as component counts do: the search
prescreen asks about the same ``(φ_s, φ_b)`` shape for every candidate
stream, the UCQ all/any reduction re-tests identical CQ pairs across
unions, and the service coalesces α-equivalent requests.  Since the
Chandra–Merlin verdict is invariant under bijective variable renaming of
*either* side, a pair is keyed by the
:func:`~repro.homomorphism.cache.canonical_component` forms of both
queries — the same discipline that keys the
:class:`~repro.homomorphism.cache.CountCache` and the planner's
:class:`~repro.planner.analyze.PlanCache`.

Only the α-invariant part of a verdict is cached: the boolean and the
count ``φ_s(canonical(φ_s))`` that prices the absence certificate.
Witness homomorphisms name the original variables, so they are
recomputed per call (a deterministic first-homomorphism enumeration —
cheap once the verdict is known positive).

Hits/misses/evictions are mirrored into the active :mod:`repro.obs`
registry as ``contain.cache.*`` counters.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.homomorphism.cache import canonical_component
from repro.obs import metrics as obs_metrics
from repro.queries.cq import ConjunctiveQuery

__all__ = [
    "ContainmentCache",
    "containment_cache_key",
    "default_containment_cache",
]

#: Default bound on cached verdicts (entries, not bytes).
DEFAULT_CONTAINMENT_CACHE_SIZE = 2048


def containment_cache_key(
    phi_s: ConjunctiveQuery, phi_b: ConjunctiveQuery, engine: str
) -> tuple:
    """The cache key of one ``φ_s ⊆ φ_b`` question under ``engine``.

    Both sides travel canonically renamed, so α-equivalent pairs share
    an entry.  The engine is part of the key on purpose — all engines
    agree on the verdict, but keeping them apart means a differential
    run never reads a verdict another engine computed.
    """
    return (canonical_component(phi_s), canonical_component(phi_b), engine)


class ContainmentCache:
    """A bounded, thread-safe LRU map from pair keys to verdicts.

    Entries are ``(contained, phi_s_count)`` tuples; ``phi_s_count`` is
    ``None`` for positive verdicts (the certificate price is only
    computed on refutation).

    >>> cache = ContainmentCache(max_entries=2)
    >>> cache.store("a", (True, None)); cache.store("b", (False, 1))
    >>> cache.store("c", (True, None))
    >>> cache.lookup("a") is None  # evicted, capacity 2
    True
    >>> cache.lookup("b")
    (False, 1)
    """

    def __init__(self, max_entries: int = DEFAULT_CONTAINMENT_CACHE_SIZE):
        if max_entries < 1:
            raise ValueError(f"cache needs max_entries >= 1, got {max_entries}")
        self._max_entries = max_entries
        self._entries: OrderedDict = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._durable = None

    def attach_durable(self, durable) -> None:
        """Mirror verdicts into a durable tier (see ``repro.shard``).

        ``durable`` receives ``record_containment(key, value)`` after
        every store and ``invalidate_containment_relations(...)`` on
        schema-level invalidation, both outside this cache's lock.
        Attaching replaces any previous tier; ``None`` detaches.
        """
        self._durable = durable

    def lookup(self, key) -> tuple[bool, int | None] | None:
        """The cached verdict tuple, or ``None`` on a miss."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._hits += 1
                obs_metrics.add("contain.cache.hits")
                return self._entries[key]
            self._misses += 1
            obs_metrics.add("contain.cache.misses")
            return None

    def store(self, key, value: tuple[bool, int | None]) -> None:
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self._max_entries:
                self._entries.popitem(last=False)
                self._evictions += 1
                obs_metrics.add("contain.cache.evictions")
        if self._durable is not None:
            self._durable.record_containment(key, value)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def items(self) -> list[tuple]:
        """A point-in-time ``(key, value)`` snapshot (LRU order, coldest
        first) — what ``snapshot`` persists."""
        with self._lock:
            return list(self._entries.items())

    def invalidate_relations(self, relations) -> int:
        """Evict verdicts whose query pair mentions any of ``relations``.

        Containment verdicts depend only on the two queries — the
        Chandra–Merlin check evaluates ``φ_b`` on the canonical database
        *of ``φ_s``*, never on user data — so database deltas can never
        make an entry stale.  This hook exists for *schema-level* changes
        (redeclaring a relation's meaning or arity across a corpus), where
        relation-scoped eviction beats :meth:`clear`'s flush-the-world.
        Keys of an unrecognized shape are dropped conservatively.
        """
        touched = frozenset(relations)
        dropped = 0
        with self._lock:
            for key in list(self._entries):
                if (
                    isinstance(key, tuple)
                    and len(key) == 3
                    and isinstance(key[0], ConjunctiveQuery)
                    and isinstance(key[1], ConjunctiveQuery)
                ):
                    mentioned = {atom.relation for atom in key[0].atoms}
                    mentioned.update(atom.relation for atom in key[1].atoms)
                    affected = bool(mentioned & touched)
                else:
                    affected = True
                if affected:
                    del self._entries[key]
                    dropped += 1
        if dropped:
            obs_metrics.add("contain.cache.invalidations", dropped)
        if self._durable is not None:
            self._durable.invalidate_containment_relations(relations)
        return dropped

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def max_entries(self) -> int:
        return self._max_entries

    @property
    def hits(self) -> int:
        return self._hits

    @property
    def misses(self) -> int:
        return self._misses

    @property
    def evictions(self) -> int:
        return self._evictions

    @property
    def hit_rate(self) -> float:
        total = self._hits + self._misses
        return self._hits / total if total else 0.0

    def stats(self) -> dict:
        """A plain-data snapshot for reports and tests."""
        return {
            "entries": len(self._entries),
            "max_entries": self._max_entries,
            "hits": self._hits,
            "misses": self._misses,
            "evictions": self._evictions,
            "hit_rate": self.hit_rate,
        }

    def __repr__(self) -> str:
        return (
            f"ContainmentCache(entries={len(self._entries)}/{self._max_entries}, "
            f"hits={self._hits}, misses={self._misses})"
        )


_DEFAULT_CACHE = ContainmentCache()


def default_containment_cache() -> ContainmentCache:
    """The process-wide verdict cache (shared by the search prescreen)."""
    return _DEFAULT_CACHE
