"""UCQ ⊆ UCQ under set semantics: the all/any reduction over CQ pairs.

Sagiv–Yannakakis: a union is set-contained in a union iff *every*
disjunct of the left side is contained in *some* disjunct of the right —
``all(any(cq ⊆ cq' for cq' in U₂) for cq in U₁)``.  (Completeness is the
canonical-database argument again: ``canonical(q₁)`` satisfies ``U₁``,
so it must satisfy ``U₂``, i.e. some ``q₂`` maps into it.)

The inner ``any`` is short-circuited in *planner cost order*: for each
left disjunct the candidate containers are sorted by the estimated cost
of their homomorphism test against ``canonical(q₁)`` (via
:func:`repro.planner.plan`), so cheap positive answers are found before
expensive ones are attempted.  Candidates skipped by an early positive
answer are counted in ``contain.ucq.short_circuits``.

Disjunct multiplicities are irrelevant under set semantics — a disjunct
contributes iff its multiplicity is positive — so zero-multiplicity
disjuncts are dropped from both sides before the reduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.containment_set.cache import ContainmentCache
from repro.containment_set.chandra_merlin import (
    AbsenceCertificate,
    cq_containment,
    encode_witness,
)
from repro.errors import ConstantError, QueryError
from repro.homomorphism.cache import CountCache
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span
from repro.queries.cq import ConjunctiveQuery
from repro.queries.terms import Term, Variable
from repro.queries.ucq import UnionOfConjunctiveQueries

__all__ = ["DisjunctCoverage", "UCQContainment", "ucq_containment", "ucq_contained"]


@dataclass(frozen=True)
class DisjunctCoverage:
    """How one left disjunct fared: which right disjunct covers it, if any."""

    disjunct: int
    container: int | None
    witness: tuple[tuple[Variable, Term], ...] | None

    @property
    def covered(self) -> bool:
        return self.container is not None

    def to_dict(self) -> dict:
        return {
            "disjunct": self.disjunct,
            "container": self.container,
            "witness": encode_witness(self.witness),
        }


@dataclass(frozen=True)
class UCQContainment:
    """The full coverage matrix of one UCQ ⊆ UCQ question."""

    contained: bool
    engine: str
    coverage: tuple[DisjunctCoverage, ...]
    certificate: AbsenceCertificate | None

    def to_dict(self) -> dict:
        return {
            "contained": self.contained,
            "engine": self.engine,
            "coverage": [entry.to_dict() for entry in self.coverage],
            "certificate": (
                self.certificate.to_dict()
                if self.certificate is not None
                else None
            ),
        }


def _disjunct_queries(side, name: str) -> list[ConjunctiveQuery]:
    """The positively-weighted disjuncts of a UCQ/CQ/sequence, in order."""
    if isinstance(side, UnionOfConjunctiveQueries):
        return [query for query, multiplicity in side.disjuncts if multiplicity > 0]
    if isinstance(side, ConjunctiveQuery):
        return [side]
    if isinstance(side, (list, tuple)):
        queries = list(side)
        if not all(isinstance(query, ConjunctiveQuery) for query in queries):
            raise QueryError(
                f"{name} must contain only conjunctive queries"
            )
        return queries
    raise QueryError(
        f"{name} must be a UCQ, a CQ, or a sequence of CQs; "
        f"got {type(side).__name__}"
    )


def _cost_order(
    containee: ConjunctiveQuery, containers: Sequence[ConjunctiveQuery]
) -> list[int]:
    """Container indices, cheapest homomorphism test first.

    The estimate is the planner's cost of evaluating each container on
    ``canonical(containee)`` — exactly the work the Chandra–Merlin test
    performs.  Ties (and unplannable containers) keep input order, so
    the chosen container — hence the reported witness — is deterministic
    and engine-independent.
    """
    from repro.planner import plan

    canonical = containee.canonical_structure()
    estimates = []
    for index, container in enumerate(containers):
        try:
            estimate = plan(container, canonical).total_cost
        except Exception:  # noqa: BLE001 — cost order is a heuristic only
            estimate = float("inf")
        estimates.append((estimate, index))
    return [index for _, index in sorted(estimates)]


def ucq_containment(
    left,
    right,
    engine: str = "auto",
    cache: ContainmentCache | None = None,
    count_cache: CountCache | None = None,
    want_witness: bool = True,
) -> UCQContainment:
    """Decide ``left ⊆_set right`` for unions of conjunctive queries.

    Accepts :class:`UnionOfConjunctiveQueries`, a plain CQ (a singleton
    union), or a sequence of CQs on either side.  Every left disjunct is
    reported with the right disjunct covering it (and the witness
    homomorphism, unless ``want_witness=False``); the first uncovered
    disjunct supplies the absence certificate — its canonical database
    satisfies ``left`` but no disjunct of ``right``.
    """
    containees = _disjunct_queries(left, "left")
    containers = _disjunct_queries(right, "right")

    with span(
        "contain.ucq",
        engine=engine,
        left_disjuncts=len(containees),
        right_disjuncts=len(containers),
    ) as current:
        obs_metrics.add("contain.ucq_tests")
        coverage: list[DisjunctCoverage] = []
        certificate: AbsenceCertificate | None = None
        for position, containee in enumerate(containees):
            order = _cost_order(containee, containers)
            found: DisjunctCoverage | None = None
            last: AbsenceCertificate | None = None
            for rank, index in enumerate(order):
                obs_metrics.add("contain.ucq.pairs_tested")
                try:
                    verdict = cq_containment(
                        containee,
                        containers[index],
                        engine=engine,
                        cache=cache,
                        count_cache=count_cache,
                        want_witness=want_witness,
                    )
                except ConstantError:
                    # The container names a constant canonical(containee)
                    # does not interpret, so no homomorphism can preserve
                    # it: this container cannot cover the disjunct.  The
                    # CQ-level API keeps the strict error (parity with
                    # direct evaluation); here another container may
                    # still answer the union-level question.
                    obs_metrics.add("contain.ucq.constant_skips")
                    continue
                if verdict.contained:
                    obs_metrics.add(
                        "contain.ucq.short_circuits", len(order) - rank - 1
                    )
                    found = DisjunctCoverage(
                        disjunct=position,
                        container=index,
                        witness=verdict.witness,
                    )
                    break
                last = verdict.certificate
            if found is not None:
                coverage.append(found)
                continue
            coverage.append(
                DisjunctCoverage(disjunct=position, container=None, witness=None)
            )
            if certificate is None:
                # Every container failed on canonical(containee), so the
                # canonical database itself separates the unions.  With
                # no containers at all the certificate is priced directly.
                certificate = last if last is not None else _direct_certificate(
                    containee, engine, count_cache
                )
        contained = all(entry.covered for entry in coverage)
        obs_metrics.add(
            "contain.verdicts.ucq_contained"
            if contained
            else "contain.verdicts.ucq_not_contained"
        )
        current.set(contained=contained)
        return UCQContainment(
            contained=contained,
            engine=engine,
            coverage=tuple(coverage),
            certificate=None if contained else certificate,
        )


def _direct_certificate(
    containee: ConjunctiveQuery, engine: str, count_cache
) -> AbsenceCertificate:
    from repro.homomorphism.engine import count

    canonical = containee.canonical_structure()
    return AbsenceCertificate(
        structure=canonical,
        lhs=count(containee, canonical, engine=engine, cache=count_cache),
        rhs=0,
    )


def ucq_contained(
    left,
    right,
    engine: str = "auto",
    cache: ContainmentCache | None = None,
    count_cache: CountCache | None = None,
) -> bool:
    """Boolean form of :func:`ucq_containment` (no witness enumeration)."""
    return ucq_containment(
        left,
        right,
        engine=engine,
        cache=cache,
        count_cache=count_cache,
        want_witness=False,
    ).contained
