"""``repro.containment_set`` — classical set-semantics containment.

The paper's problem is *bag*-semantics containment, but its machinery
leans on the classical set-semantics theory at every turn.  This package
provides that baseline as a first-class workload:

* :func:`cq_containment` / :func:`cq_contained` — CQ ⊆ CQ via the
  Chandra–Merlin homomorphism test, dispatched through any counting
  engine (``engine="auto"`` routes through the planner).
* :func:`ucq_containment` / :func:`ucq_contained` — UCQ ⊆ UCQ via the
  Sagiv–Yannakakis all/any reduction, inner loop short-circuited in
  planner cost order.
* :class:`ContainmentCache` — an α-equivalence-keyed verdict LRU
  mirroring the :class:`~repro.homomorphism.cache.CountCache` and
  :class:`~repro.planner.analyze.PlanCache` discipline.

The bridge to the paper: set containment is *necessary* for bag
containment (``φ_s`` is positive on its own canonical database), so a
negative verdict here is a finished refutation — with
``canonical(φ_s)`` as the counterexample — and powers the sound
prescreen in :func:`repro.decision.search.find_counterexample`.  See
``docs/CONTAINMENT.md``.
"""

from repro.containment_set.cache import (
    ContainmentCache,
    containment_cache_key,
    default_containment_cache,
)
from repro.containment_set.chandra_merlin import (
    AbsenceCertificate,
    CQContainment,
    cq_containment,
    cq_contained,
    encode_witness,
)
from repro.containment_set.ucq import (
    DisjunctCoverage,
    UCQContainment,
    ucq_containment,
    ucq_contained,
)

__all__ = [
    "AbsenceCertificate",
    "CQContainment",
    "ContainmentCache",
    "DisjunctCoverage",
    "UCQContainment",
    "containment_cache_key",
    "cq_containment",
    "cq_contained",
    "default_containment_cache",
    "encode_witness",
    "ucq_containment",
    "ucq_contained",
]
