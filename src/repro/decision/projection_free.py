"""The projection-free decidable fragment (Afrati–Damigos–Gergatsoulis [7]).

Section 1.1's first positive line of attack: bag containment is decidable
when both queries are **projection-free** (every body variable is an
output).  The reason is elementary once answer multisets are in view: a
projection-free query's answers are its homomorphisms themselves, so every
multiplicity is 0 or 1 and bag containment collapses to set containment of
answer relations — which is a homomorphism condition à la Chandra–Merlin,
here with the twist that the homomorphism must fix the (shared) output
variables pointwise.

Concretely, for projection-free ``Q₁, Q₂`` with the same head:
``Q₁ ⊑_bag Q₂`` iff every assignment satisfying ``body(Q₁)`` satisfies
``body(Q₂)`` iff there is a homomorphism ``body(Q₂) → canonical(body(Q₁))``
fixing every head variable.  Decidable (NP), sound, and complete — one of
the few islands of decidability around the open problem.
"""

from __future__ import annotations

from repro.errors import QueryError
from repro.homomorphism.backtracking import exists_homomorphism
from repro.queries.open_query import OpenQuery
from repro.queries.terms import Constant

__all__ = ["projection_free_contained"]


def projection_free_contained(query_s: OpenQuery, query_b: OpenQuery) -> bool:
    """Decide ``Ψ_s ⊑_bag Ψ_b`` for projection-free queries, exactly.

    Both queries must be projection-free, share the same head variables
    (order included — containment compares answer tuples positionally),
    and be inequality-free (the fragment of [7]).

    >>> from repro.queries import OpenQuery, parse_query
    >>> q1 = OpenQuery(parse_query("E(x, y) & E(y, x)"), ("x", "y"))
    >>> q2 = OpenQuery(parse_query("E(x, y)"), ("x", "y"))
    >>> projection_free_contained(q1, q2)
    True
    >>> projection_free_contained(q2, q1)
    False
    """
    for query in (query_s, query_b):
        if not query.is_projection_free():
            raise QueryError(
                "the decidable fragment requires projection-free queries; "
                f"{query} has existential variables"
            )
        if query.body.has_inequalities():
            raise QueryError("the [7] fragment is inequality-free")
    if query_s.head != query_b.head:
        raise QueryError(
            "containment compares answers positionally; the queries must "
            f"share the same head, got {query_s.head} vs {query_b.head}"
        )
    # Freeze the head: replace each head variable by a constant interpreted
    # as itself on both sides.  A homomorphism body(Q_b) → canonical(body(Q_s))
    # fixing the head pointwise is exactly a proof that Q_s's atoms entail
    # Q_b's for every assignment.
    head_constants = {
        variable: Constant(f"__pf_{variable.name}") for variable in query_s.head
    }
    frozen_s = query_s.body.rename(head_constants)
    frozen_b = query_b.body.rename(head_constants)
    return exists_homomorphism(frozen_b, frozen_s.canonical_structure())
