"""Query isomorphism, bag equivalence, and set-semantics cores.

While bag *containment* of CQs is open, bag *equivalence* is decidable —
the one positive result already in Chaudhuri & Vardi [1]: two conjunctive
queries have ``φ₁(D) = φ₂(D)`` for every database ``D`` **iff they are
isomorphic** (identical up to renaming variables).  The contrast between
the trivial equivalence problem and the intractable containment problem is
precisely what makes ``QCP^bag_CQ`` so striking.

This module implements:

* :func:`find_isomorphism` / :func:`are_isomorphic` — CQ isomorphism by
  backtracking (a bijection on variables mapping the atom set onto the
  atom set and the inequality set onto the inequality set);
* :func:`bag_equivalent` — the Chaudhuri–Vardi criterion;
* :func:`core` — the set-semantics core (minimal retract), the object the
  classical Chandra–Merlin theory revolves around and which bag semantics
  notoriously does *not* respect (a query and its core are set-equivalent
  but almost never bag-equivalent).
"""

from __future__ import annotations

from typing import Iterator, Mapping

from repro.homomorphism.backtracking import (
    enumerate_homomorphisms,
    exists_homomorphism,
)
from repro.queries.cq import ConjunctiveQuery
from repro.queries.terms import Variable

__all__ = [
    "find_isomorphism",
    "are_isomorphic",
    "bag_equivalent",
    "core",
    "set_equivalent",
]


def _signature(query: ConjunctiveQuery) -> tuple:
    """A cheap isomorphism-invariant fingerprint."""
    atom_shape = sorted(
        (
            atom.relation,
            tuple(term.is_constant() for term in atom.terms),
        )
        for atom in query.atoms
    )
    return (
        query.variable_count,
        query.atom_count,
        query.inequality_count,
        tuple(atom_shape),
        tuple(sorted(constant.name for constant in query.constants)),
    )


def find_isomorphism(
    left: ConjunctiveQuery, right: ConjunctiveQuery
) -> Mapping[Variable, Variable] | None:
    """A variable bijection turning ``left`` into exactly ``right``.

    Constants must match verbatim.  Returns the witness mapping or ``None``.
    """
    if _signature(left) != _signature(right):
        return None
    right_atoms = frozenset(right.atoms)
    right_inequalities = frozenset(right.inequalities)
    for mapping in _candidate_bijections(left, right):
        mapped_atoms = frozenset(atom.rename(dict(mapping)) for atom in left.atoms)
        if mapped_atoms != right_atoms:
            continue
        mapped_inequalities = frozenset(
            ineq.rename(dict(mapping)) for ineq in left.inequalities
        )
        if mapped_inequalities != right_inequalities:
            continue
        return mapping
    return None


def _candidate_bijections(
    left: ConjunctiveQuery, right: ConjunctiveQuery
) -> Iterator[dict[Variable, Variable]]:
    """Variable bijections that are at least homomorphisms into ``right``.

    Enumerated as homomorphisms of the inequality-free part of ``left``
    into the canonical structure of ``right`` (elements = terms), filtered
    to bijections onto ``Var(right)``.
    """
    canonical = right.canonical_structure()
    target_variables = frozenset(right.variables)
    # Enumerating left itself (with its inequalities) also covers variables
    # occurring only in inequalities, and prunes non-injective candidates
    # early (an inequality's endpoints must map to distinct terms).
    for assignment in enumerate_homomorphisms(left, canonical):
        values = list(assignment.values())
        if len(set(values)) != len(values):
            continue
        image = {term for term in values if isinstance(term, Variable)}
        if image != target_variables:
            continue
        if any(not isinstance(term, Variable) for term in values):
            continue
        yield {variable: term for variable, term in assignment.items()}


def are_isomorphic(left: ConjunctiveQuery, right: ConjunctiveQuery) -> bool:
    return find_isomorphism(left, right) is not None


def bag_equivalent(left: ConjunctiveQuery, right: ConjunctiveQuery) -> bool:
    """Chaudhuri–Vardi [1]: bag-equivalent iff isomorphic.  Decidable.

    >>> from repro.queries import parse_query
    >>> bag_equivalent(parse_query("E(x, y)"), parse_query("E(u, v)"))
    True
    >>> bag_equivalent(parse_query("E(x, y)"), parse_query("E(x, y) & E(u, v)"))
    False
    """
    return are_isomorphic(left, right)


def set_equivalent(left: ConjunctiveQuery, right: ConjunctiveQuery) -> bool:
    """Set-semantics equivalence: homomorphisms both ways (Chandra–Merlin)."""
    if left.has_inequalities() or right.has_inequalities():
        raise ValueError("set equivalence is implemented for CQs without ≠")
    return exists_homomorphism(
        left, right.canonical_structure()
    ) and exists_homomorphism(right, left.canonical_structure())


def core(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """The set-semantics core: a minimal subquery set-equivalent to the input.

    Computed by greedy retraction: repeatedly drop an atom whose removal
    preserves set-equivalence (i.e. the smaller query still maps
    homomorphically into... the *larger* one always maps into the smaller
    canonical? No — dropping atoms weakens the query, so equivalence holds
    iff the original maps into the canonical structure of the reduced
    query).  The result is unique up to isomorphism; inequality-free
    queries only.

    Bag semantics does **not** respect cores: ``core(φ)`` and ``φ`` are
    set-equivalent but bag-equivalent only when the query already was its
    core (by Chaudhuri–Vardi, since the core is not isomorphic to the
    query otherwise) — the test suite demonstrates this on the classic
    examples.
    """
    if query.has_inequalities():
        raise ValueError("cores are implemented for CQs without ≠")
    current = query
    changed = True
    while changed:
        changed = False
        for atom in current.atoms:
            reduced = ConjunctiveQuery(
                [candidate for candidate in current.atoms if candidate != atom]
            )
            if reduced.is_empty():
                continue
            # Dropping an atom can orphan variables; the retraction must
            # stay within the original variables.
            if exists_homomorphism(current, reduced.canonical_structure()):
                current = reduced
                changed = True
                break
    return current
