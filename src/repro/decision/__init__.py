"""Semi-decision procedures: search, bounded verification, certificates."""

from repro.decision.bounded import BoundedVerdict, verify_bounded
from repro.decision.certificates import Certificate, Verdict, decide_bag_containment
from repro.decision.equivalence import (
    are_isomorphic,
    bag_equivalent,
    core,
    find_isomorphism,
    set_equivalent,
)
from repro.decision.hde import HdeEstimate, hde_upper_bound, variable_ratio_bound
from repro.decision.projection_free import projection_free_contained
from repro.decision.search import (
    SearchOutcome,
    amplified,
    enumerate_structures,
    find_counterexample,
    random_structures,
)

__all__ = [
    "BoundedVerdict",
    "Certificate",
    "HdeEstimate",
    "SearchOutcome",
    "Verdict",
    "amplified",
    "are_isomorphic",
    "bag_equivalent",
    "core",
    "decide_bag_containment",
    "enumerate_structures",
    "find_isomorphism",
    "hde_upper_bound",
    "projection_free_contained",
    "find_counterexample",
    "random_structures",
    "set_equivalent",
    "variable_ratio_bound",
    "verify_bounded",
]
