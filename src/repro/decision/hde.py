"""The homomorphism domination exponent (Kopparty–Rossman [12]).

Section 1.1 recounts the second positive line of attack on
``QCP^bag_CQ``: Kopparty and Rossman observed the problem is "a purely
combinatorial phenomenon related to the notion of homomorphism domination
exponent", defined (for structures/queries ``F, G``) as

``hde(F, G) = sup { q : hom(F, D)^q ≤ hom(G, D) for every D }``.

Bag containment of boolean CQs is exactly the question ``hde(φ_s, φ_b) ≥ 1``.
The exponent is not known to be computable (by [13] its decidability is
equivalent to a long-standing open problem in information theory), so this
module provides what *is* available:

* :func:`hde_upper_bound` — an empirical upper bound from a stream of
  sample databases (each sample with ``φ_s(D) ≥ 2`` caps the exponent at
  ``log φ_b(D) / log φ_s(D)``);
* :func:`variable_ratio_bound` — the blow-up bound: by Lemma 22 (i),
  blowing up any ``D`` with ``φ_s(D) > 0`` forces
  ``hde ≤ |Var(φ_b)| / |Var(φ_s)|``;
* exact values for the worked examples used in the tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

from repro.homomorphism.engine import count
from repro.queries.cq import ConjunctiveQuery
from repro.relational.structure import Structure

__all__ = ["HdeEstimate", "hde_upper_bound", "variable_ratio_bound"]


@dataclass(frozen=True)
class HdeEstimate:
    """An empirical upper bound on ``hde(φ_s, φ_b)`` with its witness."""

    upper_bound: float
    witness: Structure | None
    samples_used: int

    def refutes_containment(self) -> bool:
        """``hde < 1`` means ``φ_s(D)^1 ≤ φ_b(D)`` fails somewhere."""
        return self.upper_bound < 1.0


def variable_ratio_bound(
    phi_s: ConjunctiveQuery, phi_b: ConjunctiveQuery
) -> float | None:
    """The Lemma 22 (i) bound: ``hde ≤ |Var(φ_b)|/|Var(φ_s)|``.

    Valid whenever some database satisfies ``φ_s`` (we use its canonical
    structure) and both queries are inequality-free; returns ``None`` when
    the bound does not apply.  Proof sketch: on ``blowup(D, k)`` the two
    sides scale as ``k^{q·j_s}`` and ``k^{j_b}``, so ``q·j_s ≤ j_b``.
    """
    if phi_s.has_inequalities() or phi_b.has_inequalities():
        return None
    if phi_s.variable_count == 0:
        return None
    canonical = phi_s.canonical_structure()
    for constant in phi_b.constants:
        if not canonical.interprets(constant.name):
            canonical = canonical.with_constant(constant.name, constant)
    if count(phi_s, canonical) == 0:
        return None
    return phi_b.variable_count / phi_s.variable_count


def hde_upper_bound(
    phi_s: ConjunctiveQuery,
    phi_b: ConjunctiveQuery,
    candidates: Iterable[Structure],
) -> HdeEstimate:
    """Empirical upper bound: min over samples of ``log φ_b / log φ_s``.

    Only samples with ``φ_s(D) ≥ 2`` are informative (``φ_s(D) ≤ 1`` makes
    ``φ_s(D)^q ≤ φ_b(D)`` monotone in the wrong way); a sample with
    ``φ_s(D) ≥ 2`` and ``φ_b(D) = 0`` drives the exponent to ``-∞``,
    reported as ``float('-inf')``.
    """
    best = math.inf
    witness: Structure | None = None
    used = 0
    for structure in candidates:
        value_s = count(phi_s, structure)
        if value_s < 2:
            continue
        used += 1
        value_b = count(phi_b, structure)
        if value_b == 0:
            return HdeEstimate(-math.inf, structure, used)
        bound = math.log(value_b) / math.log(value_s)
        if bound < best:
            best = bound
            witness = structure
    return HdeEstimate(best, witness, used)
