"""Bounded verification of generalized containment inequalities.

The verifier checks ``multiplier·φ_s(D) ≤ φ_b(D) + additive`` for **every**
structure up to a domain-size bound — the shape shared by Theorems 1–4.
A refutation is definitive; a pass is evidence only (the quantifier ranges
over all finite databases).  Exhaustive enumeration explodes quickly, so
the verifier reports exactly what it covered.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.decision.search import enumerate_structures, find_counterexample
from repro.obs.trace import span
from repro.relational.isomorphism import distinct_up_to_isomorphism
from repro.relational.schema import Schema
from repro.relational.structure import Structure

__all__ = ["BoundedVerdict", "verify_bounded"]


@dataclass(frozen=True)
class BoundedVerdict:
    """Outcome of a bounded sweep."""

    holds_on_sample: bool
    checked: int
    domain_size: int
    counterexample: Structure | None

    def __str__(self) -> str:
        status = "no violation" if self.holds_on_sample else "VIOLATED"
        return (
            f"{status} on {self.checked} structures "
            f"(domain size {self.domain_size})"
        )


def verify_bounded(
    phi_s,
    phi_b,
    schema: Schema,
    domain_size: int = 2,
    multiplier: int = 1,
    additive: int = 0,
    require_nontrivial: bool = True,
    max_facts_per_relation: int | None = None,
    up_to_isomorphism: bool = False,
    engine: str = "auto",
    workers: int = 1,
    batch_size: int | None = None,
    cache=None,
) -> BoundedVerdict:
    """Exhaustively check the inequality over all small structures.

    With ``require_nontrivial`` (the default, matching Theorems 1 and 3)
    the stream pins ``♠ = 0`` and ``♥ = 1`` and skips nothing further —
    every structure in the stream is then non-trivial by construction.

    ``up_to_isomorphism`` prunes the stream to one representative per
    isomorphism class — sound, since homomorphism counts are isomorphism
    invariants — typically shrinking the sweep severalfold at the cost of
    pairwise isomorphism tests.

    ``workers`` / ``batch_size`` / ``cache`` select the batched evaluation
    path of :func:`repro.decision.search.find_counterexample`: candidates
    are checked in parallel generations with component counts shared
    through a canonicalization-keyed cache.  The verdict is identical to
    the serial sweep.

    ``engine`` defaults to ``"auto"`` (the :mod:`repro.planner` cost
    model picks per component); the verdict is engine-independent.
    """
    with span(
        "bounded.verify",
        domain_size=domain_size,
        multiplier=multiplier,
        additive=additive,
        up_to_isomorphism=up_to_isomorphism,
    ) as current:
        candidates = enumerate_structures(
            schema,
            domain_size,
            nontrivial_constants=require_nontrivial,
            max_facts_per_relation=max_facts_per_relation,
        )
        if up_to_isomorphism:
            candidates = distinct_up_to_isomorphism(candidates)
        # set_prescreen=False: the verdict is *about this sample* — a
        # prescreen counterexample from outside the enumerated class
        # (canonical databases are not nontrivial, and may exceed the
        # domain bound) would change what "holds_on_sample" means.
        outcome = find_counterexample(
            phi_s,
            phi_b,
            candidates,
            multiplier=multiplier,
            additive=additive,
            engine=engine,
            workers=workers,
            batch_size=batch_size,
            cache=cache,
            set_prescreen=False,
        )
        current.set(checked=outcome.checked, holds_on_sample=not outcome.found)
    return BoundedVerdict(
        holds_on_sample=not outcome.found,
        checked=outcome.checked,
        domain_size=domain_size,
        counterexample=outcome.counterexample,
    )
