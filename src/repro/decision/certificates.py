"""Sound certificates for and against bag containment.

``QCP^bag_CQ`` is open, so no total decision procedure can be offered; what
*can* be offered — and is, here — are sound one-sided tests, combined into
a three-valued verdict:

* **CONTAINED** via a surjective query homomorphism ``φ_b → φ_s``
  (Lemma 12's opening observation: ``g ↦ g∘h`` injects ``Hom(φ_s, D)``
  into ``Hom(φ_b, D)`` for every ``D``).
* **NOT_CONTAINED** via
  (a) a failed Chandra–Merlin test — bag containment implies set
  containment, because ``φ_s`` applied to its own canonical structure is
  positive; or
  (b) a counterexample database found by search; or
  (c) a blow-up asymptotics argument (Lemma 22 (i)): if ``φ_s`` has more
  variables than ``φ_b`` and some database satisfies ``φ_s``, then
  ``φ_s(blowup(D,k)) = k^{j_s}·φ_s(D)`` eventually overtakes
  ``k^{j_b}·φ_b(D)``.
* **UNKNOWN** otherwise — as it must sometimes be, for an open problem.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable

from repro.decision.search import SearchOutcome, find_counterexample
from repro.homomorphism.backtracking import exists_homomorphism
from repro.homomorphism.engine import count
from repro.homomorphism.surjective import find_surjective_homomorphism
from repro.queries.cq import ConjunctiveQuery
from repro.relational.operations import blowup
from repro.relational.structure import Structure

__all__ = ["Verdict", "Certificate", "decide_bag_containment"]


class Verdict(Enum):
    CONTAINED = "contained"
    NOT_CONTAINED = "not-contained"
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class Certificate:
    """A verdict plus the evidence that produced it."""

    verdict: Verdict
    reason: str
    witness: object | None = None

    def __str__(self) -> str:
        return f"{self.verdict.value}: {self.reason}"


def _set_containment_refutation(
    phi_s: ConjunctiveQuery, phi_b: ConjunctiveQuery
) -> Certificate | None:
    """Bag containment implies set containment (for inequality-free CQs)."""
    if phi_s.has_inequalities() or phi_b.has_inequalities():
        return None
    canonical = phi_s.canonical_structure()
    if not exists_homomorphism(phi_b, canonical):
        return Certificate(
            verdict=Verdict.NOT_CONTAINED,
            reason=(
                "Chandra-Merlin fails: phi_s holds on its canonical "
                "structure but phi_b does not, so even set containment fails"
            ),
            witness=canonical,
        )
    return None


def _surjection_certificate(
    phi_s: ConjunctiveQuery, phi_b: ConjunctiveQuery
) -> Certificate | None:
    if phi_s.has_inequalities() or phi_b.has_inequalities():
        return None
    mapping = find_surjective_homomorphism(phi_b, phi_s)
    if mapping is not None:
        return Certificate(
            verdict=Verdict.CONTAINED,
            reason=(
                "onto query homomorphism phi_b -> phi_s (Lemma 12): "
                "phi_s(D) <= phi_b(D) for every database"
            ),
            witness=dict(mapping),
        )
    return None


def _blowup_asymptotics(
    phi_s: ConjunctiveQuery, phi_b: ConjunctiveQuery, max_blowup: int = 64
) -> Certificate | None:
    """Lemma 22 (i): more variables win under blow-up, given satisfiability."""
    if phi_s.has_inequalities() or phi_b.has_inequalities():
        return None
    if phi_s.variable_count <= phi_b.variable_count:
        return None
    base = phi_s.canonical_structure()
    for constant in phi_b.constants:
        if not base.interprets(constant.name):
            base = base.with_constant(constant.name, constant)
    value_s = count(phi_s, base)
    if value_s == 0:
        return None
    value_b = count(phi_b, base)
    gap = phi_s.variable_count - phi_b.variable_count
    factor = 2
    while factor <= max_blowup:
        # phi_s scales by factor^{j_s}, phi_b by factor^{j_b}: the gap
        # factor^{j_s - j_b} eventually dominates any initial deficit.
        if factor**gap * value_s > value_b:
            blown = blowup(base, factor)
            lhs, rhs = count(phi_s, blown), count(phi_b, blown)
            if lhs > rhs:
                return Certificate(
                    verdict=Verdict.NOT_CONTAINED,
                    reason=(
                        f"blow-up asymptotics (Lemma 22 i): phi_s has "
                        f"{gap} more variables; blowup(canonical, {factor}) "
                        f"gives {lhs} > {rhs}"
                    ),
                    witness=blown,
                )
        factor *= 2
    return None


def decide_bag_containment(
    phi_s: ConjunctiveQuery,
    phi_b: ConjunctiveQuery,
    candidates: Iterable[Structure] = (),
) -> Certificate:
    """Combine all sound tests into one three-valued verdict.

    ``candidates`` feeds the counterexample search (e.g. streams from
    :mod:`repro.decision.search`).  Order: cheap refutations first, then
    the containment certificate, then search.
    """
    refuted = _set_containment_refutation(phi_s, phi_b)
    if refuted is not None:
        return refuted
    asymptotic = _blowup_asymptotics(phi_s, phi_b)
    if asymptotic is not None:
        return asymptotic
    contained = _surjection_certificate(phi_s, phi_b)
    if contained is not None:
        return contained
    outcome: SearchOutcome = find_counterexample(phi_s, phi_b, candidates)
    if outcome.found:
        return Certificate(
            verdict=Verdict.NOT_CONTAINED,
            reason=(
                f"counterexample database found after {outcome.checked} "
                f"candidates: phi_s = {outcome.lhs} > phi_b = {outcome.rhs}"
            ),
            witness=outcome.counterexample,
        )
    return Certificate(
        verdict=Verdict.UNKNOWN,
        reason=(
            f"no certificate either way ({outcome.checked} candidate "
            "databases searched); QCP^bag_CQ is an open problem"
        ),
    )
