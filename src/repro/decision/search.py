"""Candidate database streams and counterexample search.

``QCP^bag_CQ``'s decidability is open, but it is co-recursively-enumerable:
enumerate databases, evaluate both queries, stop on a violation.  This
module provides the enumeration side — exhaustive streams over small
domains, randomized streams, and streams derived from structured families
(blow-ups and product powers, which Lemma 22 makes natural amplifiers) —
plus the generic search driver.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Sequence

from repro.errors import BagCQError, SearchBudgetExceeded
from repro.homomorphism.batch import count_many
from repro.homomorphism.cache import CountCache
from repro.homomorphism.engine import count
from repro.queries.cq import ConjunctiveQuery
from repro.naming import HEART, SPADE
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span
from repro.relational.operations import blowup, power
from repro.relational.schema import Schema
from repro.relational.structure import Structure

__all__ = [
    "enumerate_structures",
    "random_structures",
    "amplified",
    "SearchOutcome",
    "find_counterexample",
]


def enumerate_structures(
    schema: Schema,
    domain_size: int,
    constants: dict[str, int] | None = None,
    nontrivial_constants: bool = False,
    max_facts_per_relation: int | None = None,
) -> Iterator[Structure]:
    """Every structure over ``{0..domain_size−1}`` (up to the caps given).

    ``constants`` pins interpretations (e.g. ``{"spade": 0, "heart": 1}``);
    with ``nontrivial_constants`` the two non-triviality constants are
    added automatically (requires ``domain_size ≥ 2``).  The stream grows
    as ``2^{Σ n^arity}`` — keep domains tiny or cap facts per relation.
    """
    domain = tuple(range(domain_size))
    interpretations = dict(constants or {})
    if nontrivial_constants:
        if domain_size < 2:
            raise ValueError("non-trivial structures need at least 2 elements")
        interpretations.setdefault(SPADE, 0)
        interpretations.setdefault(HEART, 1)

    relation_tuples: list[tuple[str, list[tuple]]] = []
    for symbol in schema:
        tuples = list(itertools.product(domain, repeat=symbol.arity))
        relation_tuples.append((symbol.name, tuples))

    def subsets(tuples: list[tuple]) -> Iterator[frozenset]:
        sizes: Iterable[int] = range(len(tuples) + 1)
        if max_facts_per_relation is not None:
            sizes = range(min(len(tuples), max_facts_per_relation) + 1)
        for size in sizes:
            for combo in itertools.combinations(tuples, size):
                yield frozenset(combo)

    streams = [subsets(tuples) for _, tuples in relation_tuples]
    names = [name for name, _ in relation_tuples]
    for choice in itertools.product(*streams):
        facts = dict(zip(names, choice))
        yield Structure(schema, facts, interpretations, domain)


def random_structures(
    schema: Schema,
    domain_size: int,
    density: float = 0.3,
    count: int = 100,
    seed: int = 0,
    constants: dict[str, int] | None = None,
    nontrivial_constants: bool = False,
) -> Iterator[Structure]:
    """A reproducible stream of random structures.

    Every possible tuple of every relation is included independently with
    probability ``density``.
    """
    rng = random.Random(seed)
    domain = tuple(range(domain_size))
    interpretations = dict(constants or {})
    if nontrivial_constants:
        if domain_size < 2:
            raise ValueError("non-trivial structures need at least 2 elements")
        interpretations.setdefault(SPADE, 0)
        interpretations.setdefault(HEART, 1)
    for _ in range(count):
        facts: dict[str, set[tuple]] = {}
        for symbol in schema:
            bucket = {
                values
                for values in itertools.product(domain, repeat=symbol.arity)
                if rng.random() < density
            }
            if bucket:
                facts[symbol.name] = bucket
        yield Structure(schema, facts, interpretations, domain)


def amplified(
    bases: Iterable[Structure],
    powers: Sequence[int] = (1, 2),
    blowups: Sequence[int] = (1, 2),
) -> Iterator[Structure]:
    """Each base structure, amplified through ``D^{×k}`` and ``blowup``.

    Lemma 22 makes these families the natural "stress tests" for candidate
    containments: violations that are invisible at unit scale often
    separate after amplification (this is exactly how Lemma 23's proof
    manufactures its witness).
    """
    for base in bases:
        for k in powers:
            boosted = power(base, k) if k > 1 else base
            for factor in blowups:
                if k > 1 or factor > 1:
                    obs_metrics.add("search.amplifier_expansions")
                yield blowup(boosted, factor) if factor > 1 else boosted


@dataclass(frozen=True)
class SearchOutcome:
    """Result of a bounded counterexample search."""

    counterexample: Structure | None
    checked: int
    lhs: int | None = None
    rhs: int | None = None

    @property
    def found(self) -> bool:
        return self.counterexample is not None


def _set_semantics_prescreen(
    phi_s,
    phi_b,
    multiplier: int,
    additive: int,
    engine: str,
    current,
) -> SearchOutcome | None:
    """A finished refutation from set-semantics containment, if one applies.

    Set containment is *necessary* for bag containment: ``φ_s`` counts
    ``≥ 1`` on its own canonical database, so if no homomorphism maps
    ``φ_b`` into it, that database already violates
    ``multiplier·φ_s(D) ≤ φ_b(D) + additive`` whenever ``multiplier ≥ 1``
    and ``additive ≤ 0``.  Only that sound regime is screened — plain
    inequality-free CQs whose ``φ_b`` constants ``canonical(φ_s)``
    interprets — and a positive set-containment verdict proves nothing,
    so the stream search proceeds as before.
    """
    if not isinstance(phi_s, ConjunctiveQuery) or not isinstance(
        phi_b, ConjunctiveQuery
    ):
        return None
    if phi_s.has_inequalities() or phi_b.has_inequalities():
        return None
    if multiplier < 1 or additive > 0:
        return None
    if not phi_b.constants <= phi_s.constants:
        return None
    from repro.containment_set import cq_containment, default_containment_cache

    try:
        verdict = cq_containment(
            phi_s,
            phi_b,
            engine=engine,
            cache=default_containment_cache(),
            want_witness=False,
        )
    except BagCQError:
        # Whatever the library objects to (an unknown engine name, say),
        # the stream search will object to identically — or not at all,
        # when the stream is empty.  Either way the prescreen must not
        # change which error the caller sees.
        return None
    if verdict.contained:
        obs_metrics.add("contain.prescreen.misses")
        return None
    obs_metrics.add("contain.prescreen.hits")
    certificate = verdict.certificate
    current.set(outcome="prescreen_counterexample")
    return SearchOutcome(
        counterexample=certificate.structure,
        checked=0,
        lhs=multiplier * certificate.lhs,
        rhs=certificate.rhs + additive,
    )


def find_counterexample(
    phi_s,
    phi_b,
    candidates: Iterable[Structure],
    multiplier: int = 1,
    additive: int = 0,
    predicate: Callable[[Structure], bool] | None = None,
    max_candidates: int | None = None,
    engine: str = "auto",
    workers: int = 1,
    batch_size: int | None = None,
    cache: CountCache | bool | None = None,
    set_prescreen: bool = True,
) -> SearchOutcome:
    """Search ``candidates`` for ``multiplier·φ_s(D) > φ_b(D) + additive``.

    ``predicate`` pre-filters candidates (e.g. ``Structure.is_nontrivial``
    for the Theorem 1/3 shape).  Stops at the first hit; raises
    :class:`~repro.errors.SearchBudgetExceeded` if ``max_candidates`` is
    exhausted while candidates remain.

    ``engine`` defaults to ``"auto"``: every component of both queries is
    routed through the :mod:`repro.planner` cost model, so acyclic and
    low-treewidth query shapes (the paper's gadget families) run on their
    specialized engines instead of exponential backtracking.  The verdict
    is engine-independent — all engines count exactly — so this is purely
    a throughput knob; pass an explicit engine name to force one.

    Setting ``workers > 1``, an explicit ``batch_size``, or a ``cache``
    switches to *batched* checking: each generation of candidates is
    evaluated as one :func:`repro.homomorphism.batch.count_many` call
    (both queries on every candidate), with a canonicalization-keyed
    :class:`~repro.homomorphism.cache.CountCache` shared across the whole
    search (``cache=None`` creates one; ``False`` disables reuse; a
    :class:`CountCache` is used as-is).  The verdict — which candidate is
    reported, the lhs/rhs counts, and the budget semantics — is identical
    to the serial path; a batch may merely evaluate a few candidates past
    the first hit before it is noticed.

    With ``set_prescreen`` (the default) the search is fronted by the
    sound set-semantics screen of :mod:`repro.containment_set`: when both
    queries are plain inequality-free CQs, ``multiplier ≥ 1``,
    ``additive ≤ 0``, and no predicate restricts the candidate class, a
    failed Chandra–Merlin test finishes the search immediately —
    ``canonical(φ_s)`` is returned as the counterexample with
    ``checked == 0``, before any candidate is evaluated.  The screen only
    ever *adds* refutations the stream might have missed; it never flips
    a verdict the stream could reach (a found violation stays a
    violation).  Callers whose contract is "this exact sample was swept"
    — :func:`repro.decision.bounded.verify_bounded` — pass
    ``set_prescreen=False``.

    Under an active :func:`repro.obs.observe` scope the search records a
    ``search.find_counterexample`` span plus ``search.*`` counters:
    structures enumerated / skipped-by-predicate / evaluated, query
    evaluations, batch flushes, and — on budget exhaustion — the budget
    consumed at failure.  Prescreen outcomes surface as
    ``contain.prescreen.hits`` / ``contain.prescreen.misses``.
    """
    registry = obs_metrics.active_registry()
    batched = workers > 1 or batch_size is not None or cache is not None
    counters = {"enumerated": 0, "skipped": 0, "checked": 0}

    def _flush_counters() -> None:
        if registry is not None:
            registry.counter("search.structures_enumerated").inc(
                counters["enumerated"]
            )
            registry.counter("search.structures_skipped").inc(counters["skipped"])
            registry.counter("search.structures_evaluated").inc(counters["checked"])
            registry.counter("search.evaluations").inc(2 * counters["checked"])

    with span(
        "search.find_counterexample", multiplier=multiplier, additive=additive
    ) as current:
        if set_prescreen and predicate is None:
            prescreened = _set_semantics_prescreen(
                phi_s, phi_b, multiplier, additive, engine, current
            )
            if prescreened is not None:
                return prescreened
        try:
            if batched:
                return _find_counterexample_batched(
                    phi_s,
                    phi_b,
                    candidates,
                    multiplier,
                    additive,
                    predicate,
                    max_candidates,
                    engine,
                    workers,
                    batch_size,
                    cache,
                    current,
                    registry,
                    counters,
                )
            for structure in candidates:
                counters["enumerated"] += 1
                checked = counters["checked"]
                if max_candidates is not None and checked >= max_candidates:
                    if registry is not None:
                        registry.gauge("search.budget_at_failure").set(checked)
                    current.set(outcome="budget_exceeded", budget_consumed=checked)
                    raise SearchBudgetExceeded(
                        f"stopped after {checked} candidates without a verdict"
                    )
                if predicate is not None and not predicate(structure):
                    counters["skipped"] += 1
                    continue
                counters["checked"] = checked = checked + 1
                lhs = multiplier * count(phi_s, structure, engine=engine)
                rhs = count(phi_b, structure, engine=engine) + additive
                if lhs > rhs:
                    current.set(outcome="counterexample", checked=checked)
                    return SearchOutcome(
                        counterexample=structure, checked=checked, lhs=lhs, rhs=rhs
                    )
            current.set(outcome="exhausted", checked=counters["checked"])
            return SearchOutcome(counterexample=None, checked=counters["checked"])
        finally:
            _flush_counters()


def _find_counterexample_batched(
    phi_s,
    phi_b,
    candidates: Iterable[Structure],
    multiplier: int,
    additive: int,
    predicate: Callable[[Structure], bool] | None,
    max_candidates: int | None,
    engine: str,
    workers: int,
    batch_size: int | None,
    cache: CountCache | bool | None,
    current,
    registry,
    counters: dict,
) -> SearchOutcome:
    """Batched candidate checking behind :func:`find_counterexample`.

    Candidates accumulate into generations of ``batch_size`` (default
    ``max(16, 4·workers)``), each checked as one ``count_many`` batch.
    Violations are reported in enumeration order, so the outcome matches
    the serial path bit for bit.
    """
    effective_batch = batch_size if batch_size is not None else max(16, 4 * workers)
    if effective_batch < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    search_cache = CountCache() if cache is None else cache
    pending: list[Structure] = []

    def flush() -> SearchOutcome | None:
        if not pending:
            return None
        if registry is not None:
            registry.counter("search.batches").inc()
        pairs = []
        for structure in pending:
            pairs.append((phi_s, structure))
            pairs.append((phi_b, structure))
        values = count_many(
            pairs, engine=engine, workers=workers, cache=search_cache
        )
        for index, structure in enumerate(pending):
            counters["checked"] += 1
            lhs = multiplier * values[2 * index]
            rhs = values[2 * index + 1] + additive
            if lhs > rhs:
                current.set(outcome="counterexample", checked=counters["checked"])
                return SearchOutcome(
                    counterexample=structure,
                    checked=counters["checked"],
                    lhs=lhs,
                    rhs=rhs,
                )
        pending.clear()
        return None

    for structure in candidates:
        counters["enumerated"] += 1
        if (
            max_candidates is not None
            and counters["checked"] + len(pending) >= max_candidates
        ):
            hit = flush()
            if hit is not None:
                return hit
            if counters["checked"] >= max_candidates:
                if registry is not None:
                    registry.gauge("search.budget_at_failure").set(
                        counters["checked"]
                    )
                current.set(
                    outcome="budget_exceeded",
                    budget_consumed=counters["checked"],
                )
                raise SearchBudgetExceeded(
                    f"stopped after {counters['checked']} candidates "
                    "without a verdict"
                )
        if predicate is not None and not predicate(structure):
            counters["skipped"] += 1
            continue
        pending.append(structure)
        if len(pending) >= effective_batch:
            hit = flush()
            if hit is not None:
                return hit
    hit = flush()
    if hit is not None:
        return hit
    current.set(outcome="exhausted", checked=counters["checked"])
    return SearchOutcome(counterexample=None, checked=counters["checked"])
