"""Structural analysis of connected query components.

The planner's decisions rest on a handful of structural facts about each
connected component: is it α-acyclic (GYO-reducible, so the Yannakakis
engine applies), how wide is it (a greedy elimination bound on the
treewidth of its primal graph, which predicts the tree-decomposition
engine's table sizes), and how big is it (variables, atoms,
inequalities).  :func:`analyze_component` computes all of it once and
packages the result as an immutable :class:`ComponentProfile`.

Analysis depends only on the *query*, never on the database, so profiles
are memoized in a canonicalization-keyed :class:`PlanCache`: α-equivalent
components — the ``φ ↑ k`` copies the Section 4 reductions mass-produce —
share one analysis, exactly as their counts share one evaluation in
:class:`repro.homomorphism.cache.CountCache`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.homomorphism.acyclic import join_tree
from repro.obs import metrics as obs_metrics
from repro.queries.cq import ConjunctiveQuery

__all__ = [
    "ComponentProfile",
    "PlanCache",
    "analyze_component",
    "greedy_treewidth_bound",
]

#: Default bound on cached component profiles (entries, not bytes).
DEFAULT_PLAN_CACHE_SIZE = 2048

#: Default bound on cached compiled artifacts — far smaller than the
#: profile bound, since each artifact holds per-relation fact indexes.
DEFAULT_COMPILED_CACHE_SIZE = 256


@dataclass(frozen=True)
class ComponentProfile:
    """What the cost model needs to know about one connected component."""

    atom_count: int
    variable_count: int
    inequality_count: int
    acyclic: bool
    #: Greedy (min-degree elimination) upper bound on primal treewidth.
    treewidth_bound: int
    #: One ``(relation, arity)`` entry *per atom* (duplicates kept: the
    #: cost model sums fact scans and multiplies join sizes atom-wise).
    relations: tuple[tuple[str, int], ...]

    def describe(self) -> str:
        shape = "acyclic" if self.acyclic else f"tw<={self.treewidth_bound}"
        return (
            f"{self.atom_count} atoms, {self.variable_count} vars, "
            f"{self.inequality_count} ineqs, {shape}"
        )


def _primal_adjacency(query: ConjunctiveQuery) -> dict:
    """Primal graph as an adjacency dict: variables, co-occurrence edges."""
    adjacency: dict = {variable: set() for variable in query.variables}
    for atom in query.atoms:
        atom_variables = sorted(set(atom.variables()))
        for i, first in enumerate(atom_variables):
            for second in atom_variables[i + 1 :]:
                adjacency[first].add(second)
                adjacency[second].add(first)
    for inequality in query.inequalities:
        ineq_variables = sorted(set(inequality.variables()))
        if len(ineq_variables) == 2:
            left, right = ineq_variables
            adjacency[left].add(right)
            adjacency[right].add(left)
    return adjacency


def greedy_treewidth_bound(query: ConjunctiveQuery) -> int:
    """An upper bound on the primal-graph treewidth via min-degree elimination.

    Repeatedly eliminate a minimum-degree vertex, turning its neighborhood
    into a clique; the largest neighborhood eliminated bounds the width.
    Deterministic (ties break on the variable's sort order), dependency-free
    and fast — the planner runs it on every cache-missed component, so it
    must stay cheap even for the thousand-atom reduction queries.
    """
    adjacency = _primal_adjacency(query)
    width = 0
    while adjacency:
        vertex = min(adjacency, key=lambda v: (len(adjacency[v]), v))
        neighbors = adjacency.pop(vertex)
        width = max(width, len(neighbors))
        for first in neighbors:
            adjacency[first].discard(vertex)
            adjacency[first].update(neighbors - {first})
            adjacency[first].discard(first)
    return width


def analyze_component(component: ConjunctiveQuery) -> ComponentProfile:
    """The structural profile of one connected component (uncached)."""
    return ComponentProfile(
        atom_count=component.atom_count,
        variable_count=component.variable_count,
        inequality_count=component.inequality_count,
        acyclic=join_tree(component) is not None,
        treewidth_bound=greedy_treewidth_bound(component),
        relations=tuple(
            sorted((atom.relation, atom.arity) for atom in component.atoms)
        ),
    )


class PlanCache:
    """A bounded, thread-safe LRU map from canonical components to profiles.

    The durable key is the component's canonical (α-equivalence) form,
    computed by :func:`repro.homomorphism.cache.canonical_component` — the
    same keying discipline as
    :class:`~repro.homomorphism.cache.CountCache`, so the two caches hit
    on exactly the same repeated-component traffic.  An *exact-equality*
    front level sits before canonicalization: search loops re-plan the
    very same query object thousands of times, and a plain dict lookup is
    far cheaper than 1-WL refinement.  Hits and misses are mirrored into
    the active :mod:`repro.obs` registry as ``plan.cache_hits`` /
    ``plan.cache_misses``.

    The cache also stores the *compiled artifacts* of
    :mod:`repro.homomorphism.compiled` alongside the profile IR (see
    :meth:`compiled_artifact`): those are keyed by ``(canonical
    component, component_fingerprint)`` — unlike profiles they depend on
    the database, but only on the fact sets of the relations the component
    reads (plus its constants and, for components with atom-free
    variables, the domain size).  The fingerprint keying makes the store
    version-aware: a database delta leaves every artifact of untouched
    relations addressable, and :meth:`invalidate_relations` /
    :meth:`compiled_items` give delta evaluation relation-scoped eviction
    and migration.  Artifacts have their own, smaller LRU bound and mirror
    their traffic as ``plan.compile.cache_hits`` /
    ``plan.compile.cache_misses``.
    """

    def __init__(
        self,
        max_entries: int = DEFAULT_PLAN_CACHE_SIZE,
        compiled_entries: int = DEFAULT_COMPILED_CACHE_SIZE,
    ) -> None:
        if max_entries < 1:
            raise ValueError(f"cache needs max_entries >= 1, got {max_entries}")
        if compiled_entries < 1:
            raise ValueError(
                f"cache needs compiled_entries >= 1, got {compiled_entries}"
            )
        self._max_entries = max_entries
        self._entries: OrderedDict = OrderedDict()
        self._front: OrderedDict = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._compiled_max = compiled_entries
        self._compiled: OrderedDict = OrderedDict()
        self._compiled_front: OrderedDict = OrderedDict()
        self._compiled_hits = 0
        self._compiled_misses = 0
        self._durable = None

    def attach_durable(self, durable) -> None:
        """Mirror the *profile* level into a durable tier.

        ``durable`` (a :class:`repro.shard.persist.DurableCacheStore`)
        receives ``record_plan(canonical, profile)`` after every
        analysis miss, outside this cache's lock.  Compiled artifacts
        are closures and never cross the hook — they rebuild on demand
        from restored profiles.  Attaching replaces any previous tier;
        ``None`` detaches.
        """
        self._durable = durable

    def _record_hit(self) -> None:
        self._hits += 1
        obs_metrics.add("plan.cache_hits")

    def profile(self, component: ConjunctiveQuery) -> tuple[ComponentProfile, bool]:
        """``(profile, was_hit)`` for the component, analyzing on a miss."""
        from repro.homomorphism.cache import canonical_component

        with self._lock:
            cached = self._front.get(component)
            if cached is not None:
                self._front.move_to_end(component)
                self._record_hit()
                return cached, True
        key = canonical_component(component)
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self._store_front(component, cached)
                self._record_hit()
                return cached, True
            self._misses += 1
        obs_metrics.add("plan.cache_misses")
        computed = analyze_component(component)
        with self._lock:
            self._entries[key] = computed
            self._entries.move_to_end(key)
            while len(self._entries) > self._max_entries:
                self._entries.popitem(last=False)
            self._store_front(component, computed)
        if self._durable is not None:
            self._durable.record_plan(key, computed)
        return computed, False

    def profile_items(self) -> list[tuple]:
        """Snapshot of the canonical profile store (coldest first) —
        what ``snapshot`` persists.  Front-level (exact-object) entries
        are derived and excluded."""
        with self._lock:
            return list(self._entries.items())

    def store_profile(
        self, component: ConjunctiveQuery, profile: ComponentProfile
    ) -> None:
        """Insert a profile under an externally-computed canonical key.

        Restore uses this to warm the canonical level without paying
        re-analysis; the exact-object front refills naturally on use.
        """
        with self._lock:
            self._entries[component] = profile
            self._entries.move_to_end(component)
            while len(self._entries) > self._max_entries:
                self._entries.popitem(last=False)

    def _store_front(
        self, component: ConjunctiveQuery, profile: ComponentProfile
    ) -> None:
        self._front[component] = profile
        self._front.move_to_end(component)
        while len(self._front) > self._max_entries:
            self._front.popitem(last=False)

    def compiled_artifact(self, component: ConjunctiveQuery, structure, build):
        """``(artifact, was_hit)``; calls ``build(canonical, structure)`` on a miss.

        The artifact is built from (and keyed by) the component's
        *canonical* form, so α-equivalent components on the same
        structure — the ``φ ↑ k`` copies — share one compilation.
        Homomorphism counts are invariant under variable renaming, which
        is exactly what makes the shared artifact sound.  An
        exact-equality front level mirrors :meth:`profile`'s.
        """
        from repro.homomorphism.cache import (
            canonical_component,
            component_fingerprint,
        )

        front_key = (component, structure)
        with self._lock:
            cached = self._compiled_front.get(front_key)
            if cached is not None:
                self._compiled_front.move_to_end(front_key)
                self._compiled_hits += 1
                obs_metrics.add("plan.compile.cache_hits")
                return cached, True
        key = (
            canonical_component(component),
            component_fingerprint(component, structure),
        )
        with self._lock:
            cached = self._compiled.get(key)
            if cached is not None:
                self._compiled.move_to_end(key)
                self._store_compiled_front(front_key, cached)
                self._compiled_hits += 1
                obs_metrics.add("plan.compile.cache_hits")
                return cached, True
            self._compiled_misses += 1
        obs_metrics.add("plan.compile.cache_misses")
        artifact = build(key[0], structure)
        with self._lock:
            self._compiled[key] = artifact
            self._compiled.move_to_end(key)
            while len(self._compiled) > self._compiled_max:
                self._compiled.popitem(last=False)
            self._store_compiled_front(front_key, artifact)
        return artifact, False

    def _store_compiled_front(self, front_key, artifact) -> None:
        self._compiled_front[front_key] = artifact
        self._compiled_front.move_to_end(front_key)
        while len(self._compiled_front) > self._compiled_max:
            self._compiled_front.popitem(last=False)

    def compiled_items(self) -> list[tuple]:
        """Snapshot of the durable artifact store (for delta migration)."""
        with self._lock:
            return list(self._compiled.items())

    def compiled_discard(self, key) -> bool:
        """Drop one durable artifact entry; True when it was present."""
        with self._lock:
            return self._compiled.pop(key, None) is not None

    def store_compiled(self, key, artifact) -> None:
        """Insert a durable artifact under an externally-computed key.

        Delta evaluation uses this to re-home a refreshed artifact under
        the mutated database's fingerprint without paying a rebuild.
        """
        with self._lock:
            self._compiled[key] = artifact
            self._compiled.move_to_end(key)
            while len(self._compiled) > self._compiled_max:
                self._compiled.popitem(last=False)

    def invalidate_relations(
        self, relations, *, domain_changed: bool = False
    ) -> int:
        """Evict compiled artifacts depending on any of ``relations``.

        Profiles are structure-independent and survive untouched.  The
        exact-object front level is cleared wholesale: its keys embed full
        structures, so stale entries can never be *hit* after a mutation,
        but dropping them keeps the store's contents meaningful.  Returns
        the number of durable entries evicted.
        """
        touched = frozenset(relations)
        dropped = 0
        with self._lock:
            for key in list(self._compiled):
                fingerprint = key[1] if isinstance(key, tuple) and len(key) == 2 else None
                if (
                    isinstance(fingerprint, tuple)
                    and len(fingerprint) == 4
                    and fingerprint[0] == "§fp"
                ):
                    depends = frozenset(name for name, _ in fingerprint[1])
                    affected = bool(depends & touched) or (
                        domain_changed and fingerprint[3] is not None
                    )
                else:
                    affected = True
                if affected:
                    del self._compiled[key]
                    dropped += 1
            self._compiled_front.clear()
        return dropped

    def compiled_stats(self) -> dict:
        """A plain-data snapshot of the artifact store (reports, tests)."""
        return {
            "entries": len(self._compiled),
            "max_entries": self._compiled_max,
            "hits": self._compiled_hits,
            "misses": self._compiled_misses,
        }

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._front.clear()
            self._compiled.clear()
            self._compiled_front.clear()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def max_entries(self) -> int:
        return self._max_entries

    @property
    def hits(self) -> int:
        return self._hits

    @property
    def misses(self) -> int:
        return self._misses

    def stats(self) -> dict:
        """A plain-data snapshot for reports and tests."""
        return {
            "entries": len(self._entries),
            "max_entries": self._max_entries,
            "hits": self._hits,
            "misses": self._misses,
        }

    def __repr__(self) -> str:
        return (
            f"PlanCache(entries={len(self._entries)}/{self._max_entries}, "
            f"hits={self._hits}, misses={self._misses})"
        )
