"""The calibrated cost model: score each engine on one component.

Costs are abstract "fact visits" — coarse, but calibrated so the ordering
between engines is right on the workloads this repository actually runs
(the E13/E15/E16 benchmark families):

* **acyclic** (Yannakakis counting) is linear in the matching facts, with
  a small per-atom sorting overhead;
* **treewidth** (tree-decomposition DP) pays ``|bags| · d^(width+1)`` for
  its message tables, with a heavier per-entry constant;
* **backtracking** is bounded by the naive join size (the product of the
  per-atom fact counts) and by ``d^vars``, whichever is smaller — its
  subtree memoization and private-variable counting usually beat both,
  which the small additive bias accounts for;
* **compiled** (specialized per-plan evaluators,
  :mod:`repro.homomorphism.compiled`) pays a one-time indexing pass that
  is linear in the matching facts, then runs either the array-semiring
  Yannakakis loop (acyclic shapes) or a closure chain whose residual
  search is a fraction of the interpreted join — modelled as
  index-build cost plus a discounted join bound.

The model never has to be *right*, only *monotone enough*: every engine
returns the same exact count (the qa oracles enforce it), so a bad
estimate costs time, never correctness.  Engines that could *raise* where
the default engine would not are excluded up front by
:func:`eligible_engines` — ``auto`` must be a drop-in for the default on
every input, including the error-raising ones.

**Calibration.**  The constants live in a :class:`CostConstants` value
(the defaults are the hand-calibrated ones).  ``bagcq calibrate`` fits
the per-engine *scale* factors from measured wall time per structural
visit on a seeded workload (:func:`fit_constants`), and
:func:`set_constants` / :func:`use_constants` install a fitted set —
selection picks the engine minimizing ``scale × visits``, so scales put
the three structural estimates in one common currency (seconds, up to a
shared normalization).  Profiles cached by the planner stay valid across
a swap: constants enter only at selection time, never at analysis time.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, fields, replace
from typing import Iterator

from repro.planner.analyze import ComponentProfile
from repro.queries.cq import ConjunctiveQuery
from repro.relational.structure import Structure

__all__ = [
    "CostConstants",
    "eligible_engines",
    "estimate_cost",
    "estimate_visits",
    "fit_constants",
    "get_constants",
    "select_engine",
    "set_constants",
    "use_constants",
]

#: Estimates saturate here — beyond this every plan is "hopeless" alike.
COST_CEILING = 1e18

#: Deterministic tie-break: the reference engine wins equal scores.
_PREFERENCE = {"backtracking": 0, "acyclic": 1, "treewidth": 2, "compiled": 3}

ENGINES = ("backtracking", "acyclic", "treewidth", "compiled")


@dataclass(frozen=True)
class CostConstants:
    """Every tunable of the cost model, as one immutable value.

    The ``*_base`` / ``*_per_*`` fields shape each engine's *structural*
    visit estimate; the ``*_scale`` fields convert visits to a common
    currency (fitted by ``bagcq calibrate``, 1.0 when uncalibrated).
    """

    acyclic_base: float = 24.0
    acyclic_per_fact: float = 2.0
    acyclic_per_atom: float = 4.0
    treewidth_base: float = 60.0
    treewidth_per_entry: float = 6.0
    backtracking_base: float = 10.0
    compiled_base: float = 30.0
    compiled_per_fact: float = 1.0
    compiled_per_atom: float = 2.0
    compiled_per_node: float = 0.5
    acyclic_scale: float = 1.0
    treewidth_scale: float = 1.0
    backtracking_scale: float = 1.0
    compiled_scale: float = 1.0

    def scale(self, engine: str) -> float:
        if engine not in ENGINES:
            raise ValueError(f"no cost model for engine {engine!r}")
        return getattr(self, f"{engine}_scale")

    def to_dict(self) -> dict:
        """A plain JSON-serializable mapping (field name → value)."""
        return {field.name: getattr(self, field.name) for field in fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "CostConstants":
        """Rebuild from :meth:`to_dict` output; unknown keys rejected,
        missing keys default — so artifacts from older calibrations load
        as long as they only *lack* fields."""
        known = {field.name for field in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown cost constant(s): {', '.join(sorted(unknown))}"
            )
        values = {key: float(value) for key, value in data.items()}
        constants = cls(**values)
        for field in fields(cls):
            if getattr(constants, field.name) <= 0:
                raise ValueError(
                    f"cost constant {field.name} must be positive"
                )
        return constants


_DEFAULT_CONSTANTS = CostConstants()
_current_constants = _DEFAULT_CONSTANTS


def get_constants() -> CostConstants:
    """The constants the planner is currently selecting with."""
    return _current_constants


def set_constants(constants: CostConstants | None) -> None:
    """Install ``constants`` process-wide (``None`` restores defaults)."""
    global _current_constants
    _current_constants = constants or _DEFAULT_CONSTANTS


@contextmanager
def use_constants(constants: CostConstants) -> Iterator[CostConstants]:
    """Temporarily install ``constants`` (tests, what-if EXPLAINs)."""
    previous = _current_constants
    set_constants(constants)
    try:
        yield constants
    finally:
        set_constants(previous)


def fit_constants(
    samples: list[tuple[str, float, float]],
    base: CostConstants | None = None,
) -> CostConstants:
    """Fit per-engine scales from ``(engine, visits, seconds)`` samples.

    Each engine's seconds-per-visit rate is the ratio of totals (robust
    to a few noisy samples), normalized so ``backtracking_scale`` stays
    1.0 — only *relative* rates matter to selection.  Engines with no
    samples (or degenerate ones) keep their ``base`` scale.
    """
    base = base or _DEFAULT_CONSTANTS
    visit_totals: dict[str, float] = {}
    second_totals: dict[str, float] = {}
    for engine, visits, seconds in samples:
        if engine not in ENGINES:
            raise ValueError(f"no cost model for engine {engine!r}")
        if visits <= 0 or seconds <= 0:
            continue
        visit_totals[engine] = visit_totals.get(engine, 0.0) + visits
        second_totals[engine] = second_totals.get(engine, 0.0) + seconds
    rates = {
        engine: second_totals[engine] / visit_totals[engine]
        for engine in visit_totals
    }
    reference = rates.get("backtracking")
    if reference is None or reference <= 0:
        # Without the reference engine there is nothing to normalize
        # against; keep whatever the base carried.
        return base
    updates = {
        f"{engine}_scale": rate / reference for engine, rate in rates.items()
    }
    return replace(base, **updates)


def _saturating_power(base: float, exponent: int) -> float:
    """``base ** exponent`` clamped into ``[1, COST_CEILING]``."""
    if base <= 1.0:
        return 1.0
    total = 1.0
    for _ in range(exponent):
        total *= base
        if total >= COST_CEILING:
            return COST_CEILING
    return total


def _relevant_facts(profile: ComponentProfile, structure: Structure) -> int:
    """Facts in the relations the component touches (missing ones: 0)."""
    total = 0
    for relation, _ in profile.relations:
        if relation in structure.schema:
            total += structure.fact_count(relation)
    return total


def eligible_engines(
    component: ConjunctiveQuery,
    profile: ComponentProfile,
    structure: Structure,
) -> tuple[str, ...]:
    """Engines that are *safe* for this component on this structure.

    Safe means: same exact count, and no error the backtracking engine
    would not also raise.  ``backtracking`` and ``treewidth`` are total
    (and agree on every error class: uninterpreted constants raise
    :class:`~repro.errors.ConstantError`, arity mismatches raise
    :class:`~repro.errors.EvaluationError`).  ``acyclic`` additionally
    requires an inequality-free, GYO-reducible component whose constants
    the structure interprets and whose atom arities match the structure's
    schema — outside that envelope it raises where the others would not.

    ``compiled`` is *total* (it falls back to the interpreter outside
    its envelope), but the planner still gates it on the specializer's
    own envelope — no inequalities, interpreted constants, matching
    arities (GYO-reducibility is **not** required: cyclic shapes take
    the closure chain) — so that selecting it always means actually
    compiling, never a silent round-trip through the fallback.
    """
    engines = ["backtracking", "treewidth"]
    specializable = (
        profile.inequality_count == 0
        and all(
            structure.interprets(constant.name)
            for constant in component.constants
        )
        and all(
            relation not in structure.schema
            or structure.schema.arity(relation) == arity
            for relation, arity in profile.relations
        )
    )
    if specializable and profile.acyclic:
        engines.append("acyclic")
    if specializable:
        engines.append("compiled")
    return tuple(engines)


def estimate_visits(
    engine: str,
    profile: ComponentProfile,
    structure: Structure,
    constants: CostConstants | None = None,
) -> float:
    """The *structural* visit estimate of ``engine``, before scaling.

    This is the quantity ``bagcq calibrate`` pairs with measured wall
    time: seconds ≈ scale × visits.
    """
    constants = constants or _current_constants
    domain_size = max(len(structure.domain), 1)
    facts = _relevant_facts(profile, structure)
    if engine == "acyclic":
        return (
            constants.acyclic_base
            + constants.acyclic_per_fact * facts
            + constants.acyclic_per_atom * profile.atom_count
        )
    if engine == "treewidth":
        table = _saturating_power(
            float(domain_size), profile.treewidth_bound + 1
        )
        bags = max(profile.variable_count, 1)
        return min(
            constants.treewidth_base
            + constants.treewidth_per_entry * bags * table,
            COST_CEILING,
        )
    if engine == "backtracking":
        assignments = _saturating_power(
            float(domain_size), profile.variable_count
        )
        join = 1.0
        for relation, _ in profile.relations:
            cardinality = (
                structure.fact_count(relation)
                if relation in structure.schema
                else 0
            )
            join *= float(max(cardinality, 1))
            if join >= COST_CEILING:
                join = COST_CEILING
                break
        return constants.backtracking_base + min(assignments, join)
    if engine == "compiled":
        # Index build: linear in the facts, plus a per-atom closure /
        # grouping setup.  Residual search: free for acyclic shapes (the
        # array passes are folded into the per-fact term); a discounted
        # node bound for cyclic ones (the chain still explores the join,
        # but each step is a hash lookup instead of a fact scan).
        build = (
            constants.compiled_base
            + constants.compiled_per_fact * facts
            + constants.compiled_per_atom * profile.atom_count
        )
        if profile.acyclic:
            return build
        assignments = _saturating_power(
            float(domain_size), profile.variable_count
        )
        join = 1.0
        for relation, _ in profile.relations:
            cardinality = (
                structure.fact_count(relation)
                if relation in structure.schema
                else 0
            )
            join *= float(max(cardinality, 1))
            if join >= COST_CEILING:
                join = COST_CEILING
                break
        return min(
            build + constants.compiled_per_node * min(assignments, join),
            COST_CEILING,
        )
    raise ValueError(f"no cost model for engine {engine!r}")


def estimate_cost(
    engine: str,
    profile: ComponentProfile,
    structure: Structure,
    constants: CostConstants | None = None,
) -> float:
    """Predicted cost of ``engine`` on the component: scale × visits."""
    constants = constants or _current_constants
    return min(
        constants.scale(engine)
        * estimate_visits(engine, profile, structure, constants),
        COST_CEILING,
    )


def select_engine(
    component: ConjunctiveQuery,
    profile: ComponentProfile,
    structure: Structure,
    constants: CostConstants | None = None,
) -> tuple[str, float]:
    """The cheapest safe engine for the component: ``(engine, est_cost)``."""
    constants = constants or _current_constants
    best: tuple[float, int, str] | None = None
    for engine in eligible_engines(component, profile, structure):
        cost = estimate_cost(engine, profile, structure, constants)
        candidate = (cost, _PREFERENCE[engine], engine)
        if best is None or candidate < best:
            best = candidate
    assert best is not None  # backtracking is always eligible
    return best[2], best[0]
