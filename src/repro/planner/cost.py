"""The calibrated cost model: score each engine on one component.

Costs are abstract "fact visits" — coarse, but calibrated so the ordering
between engines is right on the workloads this repository actually runs
(the E13/E15/E16 benchmark families):

* **acyclic** (Yannakakis counting) is linear in the matching facts, with
  a small per-atom sorting overhead;
* **treewidth** (tree-decomposition DP) pays ``|bags| · d^(width+1)`` for
  its message tables, with a heavier per-entry constant;
* **backtracking** is bounded by the naive join size (the product of the
  per-atom fact counts) and by ``d^vars``, whichever is smaller — its
  subtree memoization and private-variable counting usually beat both,
  which the small additive bias accounts for.

The model never has to be *right*, only *monotone enough*: every engine
returns the same exact count (the qa oracles enforce it), so a bad
estimate costs time, never correctness.  Engines that could *raise* where
the default engine would not are excluded up front by
:func:`eligible_engines` — ``auto`` must be a drop-in for the default on
every input, including the error-raising ones.
"""

from __future__ import annotations

from repro.planner.analyze import ComponentProfile
from repro.queries.cq import ConjunctiveQuery
from repro.relational.structure import Structure

__all__ = ["eligible_engines", "estimate_cost", "select_engine"]

#: Estimates saturate here — beyond this every plan is "hopeless" alike.
COST_CEILING = 1e18

#: Deterministic tie-break: the reference engine wins equal scores.
_PREFERENCE = {"backtracking": 0, "acyclic": 1, "treewidth": 2}

#: Calibrated constants (see the module docstring and the E16 benchmark).
_ACYCLIC_BASE = 24.0
_ACYCLIC_PER_FACT = 2.0
_TREEWIDTH_BASE = 60.0
_TREEWIDTH_PER_ENTRY = 6.0
_BACKTRACKING_BASE = 10.0


def _saturating_power(base: float, exponent: int) -> float:
    """``base ** exponent`` clamped into ``[1, COST_CEILING]``."""
    if base <= 1.0:
        return 1.0
    total = 1.0
    for _ in range(exponent):
        total *= base
        if total >= COST_CEILING:
            return COST_CEILING
    return total


def _relevant_facts(profile: ComponentProfile, structure: Structure) -> int:
    """Facts in the relations the component touches (missing ones: 0)."""
    total = 0
    for relation, _ in profile.relations:
        if relation in structure.schema:
            total += structure.fact_count(relation)
    return total


def eligible_engines(
    component: ConjunctiveQuery,
    profile: ComponentProfile,
    structure: Structure,
) -> tuple[str, ...]:
    """Engines that are *safe* for this component on this structure.

    Safe means: same exact count, and no error the backtracking engine
    would not also raise.  ``backtracking`` and ``treewidth`` are total
    (and agree on every error class: uninterpreted constants raise
    :class:`~repro.errors.ConstantError`, arity mismatches raise
    :class:`~repro.errors.EvaluationError`).  ``acyclic`` additionally
    requires an inequality-free, GYO-reducible component whose constants
    the structure interprets and whose atom arities match the structure's
    schema — outside that envelope it raises where the others would not.
    """
    engines = ["backtracking", "treewidth"]
    if (
        profile.inequality_count == 0
        and profile.acyclic
        and all(
            structure.interprets(constant.name)
            for constant in component.constants
        )
        and all(
            relation not in structure.schema
            or structure.schema.arity(relation) == arity
            for relation, arity in profile.relations
        )
    ):
        engines.append("acyclic")
    return tuple(engines)


def estimate_cost(
    engine: str, profile: ComponentProfile, structure: Structure
) -> float:
    """Predicted evaluation cost of ``engine`` on the component, in fact visits."""
    domain_size = max(len(structure.domain), 1)
    facts = _relevant_facts(profile, structure)
    if engine == "acyclic":
        return (
            _ACYCLIC_BASE
            + _ACYCLIC_PER_FACT * facts
            + 4.0 * profile.atom_count
        )
    if engine == "treewidth":
        table = _saturating_power(
            float(domain_size), profile.treewidth_bound + 1
        )
        bags = max(profile.variable_count, 1)
        return min(
            _TREEWIDTH_BASE + _TREEWIDTH_PER_ENTRY * bags * table,
            COST_CEILING,
        )
    if engine == "backtracking":
        assignments = _saturating_power(
            float(domain_size), profile.variable_count
        )
        join = 1.0
        for relation, _ in profile.relations:
            cardinality = (
                structure.fact_count(relation)
                if relation in structure.schema
                else 0
            )
            join *= float(max(cardinality, 1))
            if join >= COST_CEILING:
                join = COST_CEILING
                break
        return _BACKTRACKING_BASE + min(assignments, join)
    raise ValueError(f"no cost model for engine {engine!r}")


def select_engine(
    component: ConjunctiveQuery,
    profile: ComponentProfile,
    structure: Structure,
) -> tuple[str, float]:
    """The cheapest safe engine for the component: ``(engine, est_cost)``."""
    best: tuple[float, int, str] | None = None
    for engine in eligible_engines(component, profile, structure):
        cost = estimate_cost(engine, profile, structure)
        candidate = (cost, _PREFERENCE[engine], engine)
        if best is None or candidate < best:
            best = candidate
    assert best is not None  # backtracking is always eligible
    return best[2], best[0]
