"""The plan IR: ``plan(query, structure)`` → :class:`Plan`, plus EXPLAIN.

A :class:`Plan` is the unit the evaluation layers execute: one
:class:`PlanStep` per connected component, each carrying the component,
the engine the cost model picked for it, the predicted cost, and the
structural profile that justified the pick.  ``engine="auto"`` anywhere
in :mod:`repro.homomorphism.engine` / ``batch`` is exactly "build the
plan, run its steps"; ``bagcq explain`` pretty-prints the same object.

Observability: every planning call pre-registers the full ``plan.*``
counter family at zero (the convention ``repro.qa`` established for
``qa.*``), so clean ``--stats`` runs report them deterministically:

* ``plan.calls`` — :func:`plan` invocations;
* ``plan.components`` — component selections performed (cached or not);
* ``plan.cache_hits`` / ``plan.cache_misses`` — :class:`PlanCache`
  profile lookups;
* ``plan.selected.backtracking`` / ``.treewidth`` / ``.acyclic`` /
  ``.compiled`` — which engine won;
* ``plan.compile.builds`` / ``plan.compile.cache_hits`` /
  ``plan.compile.cache_misses`` — compiled-artifact traffic in the
  :class:`PlanCache` (see :mod:`repro.homomorphism.compiled`).

:func:`plan` additionally opens ``plan.analyze`` / ``plan.select`` spans
(attributed with component counts and the winning engines) — coarse,
one per planning call, so traces stay small.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.errors import EvaluationError
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span
from repro.planner.analyze import ComponentProfile, PlanCache
from repro.planner.cost import select_engine
from repro.queries.cq import ConjunctiveQuery
from repro.queries.product import QueryProduct
from repro.relational.structure import Structure

__all__ = [
    "Plan",
    "PlanStep",
    "default_plan_cache",
    "plan",
    "plan_cache_occupancy",
    "select_for",
]

Plannable = Union[ConjunctiveQuery, QueryProduct]

#: Every counter the planner ever increments, for zero pre-registration.
_PLAN_COUNTERS = (
    "plan.calls",
    "plan.components",
    "plan.cache_hits",
    "plan.cache_misses",
    "plan.selected.backtracking",
    "plan.selected.treewidth",
    "plan.selected.acyclic",
    "plan.selected.compiled",
    "plan.compile.builds",
    "plan.compile.cache_hits",
    "plan.compile.cache_misses",
)

#: Process-wide profile cache: planning is pure query analysis, so sharing
#: across calls (and across `auto` entry points) is always sound.
_DEFAULT_PLAN_CACHE = PlanCache()


def default_plan_cache() -> PlanCache:
    """The process-wide :class:`PlanCache` the ``auto`` engine uses."""
    return _DEFAULT_PLAN_CACHE


def plan_cache_occupancy(cache: PlanCache | None = None) -> dict:
    """Both levels of a plan cache in one health-report dict.

    The ``/healthz`` surface: profile occupancy (durable, snapshot-able)
    and compiled-artifact occupancy (process-local closures) side by
    side, defaulting to the process-wide cache the service uses.
    """
    plan_cache = cache if cache is not None else _DEFAULT_PLAN_CACHE
    return {
        "profiles": plan_cache.stats(),
        "compiled": plan_cache.compiled_stats(),
    }


def _preregister_counters() -> None:
    registry = obs_metrics.active_registry()
    if registry is not None:
        for name in _PLAN_COUNTERS:
            registry.counter(name)


@dataclass(frozen=True)
class PlanStep:
    """One component's slice of a plan: what runs where, and why."""

    component: ConjunctiveQuery
    engine: str
    est_cost: float
    profile: ComponentProfile
    #: Exponent the component's count is raised to (lazy ``↑ k`` factors).
    exponent: int = 1

    def describe(self) -> str:
        power = f" ^{self.exponent}" if self.exponent != 1 else ""
        return (
            f"engine={self.engine:<12} est_cost={self.est_cost:>12.0f}  "
            f"[{self.profile.describe()}]{power}  {self.component}"
        )

    def to_dict(self) -> dict:
        """A JSON-ready rendering of this step (machine-readable EXPLAIN)."""
        from repro.io import query_to_dict

        return {
            "component": query_to_dict(self.component),
            "component_text": str(self.component),
            "engine": self.engine,
            "est_cost": self.est_cost,
            "exponent": self.exponent,
            "profile": {
                "atom_count": self.profile.atom_count,
                "variable_count": self.profile.variable_count,
                "inequality_count": self.profile.inequality_count,
                "acyclic": self.profile.acyclic,
                "treewidth_bound": self.profile.treewidth_bound,
            },
        }


@dataclass(frozen=True)
class Plan:
    """An executable evaluation plan: one engine-assigned step per component."""

    steps: tuple[PlanStep, ...]
    cache_hits: int
    cache_misses: int

    @property
    def total_cost(self) -> float:
        return sum(step.est_cost for step in self.steps)

    @property
    def engines(self) -> tuple[str, ...]:
        """Engines used, deduplicated, in first-use order."""
        seen: dict[str, None] = {}
        for step in self.steps:
            seen.setdefault(step.engine, None)
        return tuple(seen)

    def explain(self) -> str:
        """A human-readable rendering (the payload of ``bagcq explain``)."""
        if not self.steps:
            return "plan: empty query — constant 1, no engine dispatched"
        lines = [f"plan: {len(self.steps)} component(s)"]
        for index, step in enumerate(self.steps, start=1):
            lines.append(f"  step {index}: {step.describe()}")
        lines.append(
            f"total est cost: {self.total_cost:.0f}   "
            f"plan cache: {self.cache_hits} hit(s), "
            f"{self.cache_misses} miss(es)"
        )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """The machine-readable plan: ``bagcq explain --json`` and the
        service's ``/explain`` endpoint both emit exactly this shape
        (serialized with :func:`repro.obs.report.stable_json_dumps`)."""
        return {
            "schema_version": 1,
            "steps": [step.to_dict() for step in self.steps],
            "engines": list(self.engines),
            "total_est_cost": self.total_cost,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
        }


def select_for(
    component: ConjunctiveQuery,
    structure: Structure,
    cache: PlanCache | None = None,
) -> PlanStep:
    """Plan a single connected component (the engine dispatch hot path).

    Returns the winning engine with its predicted cost.  Counters are
    recorded; no spans are opened — this runs once per component per
    ``count()`` call, which is far too hot for tracing.
    """
    _preregister_counters()
    plan_cache = cache if cache is not None else _DEFAULT_PLAN_CACHE
    profile, was_hit = plan_cache.profile(component)
    engine, est_cost = select_engine(component, profile, structure)
    obs_metrics.add("plan.components")
    obs_metrics.add(f"plan.selected.{engine}")
    return PlanStep(
        component=component,
        engine=engine,
        est_cost=est_cost,
        profile=profile,
        exponent=1,
    )


def _component_terms(query: Plannable):
    if isinstance(query, QueryProduct):
        for factor, exponent in query:
            for component in factor.connected_components():
                yield component, exponent
    elif isinstance(query, ConjunctiveQuery):
        for component in query.connected_components():
            yield component, 1
    else:
        raise EvaluationError(
            f"cannot plan object of type {type(query).__name__}"
        )


def plan(
    query: Plannable,
    structure: Structure,
    cache: PlanCache | None = None,
) -> Plan:
    """Decompose ``query`` and pick the cheapest safe engine per component.

    Accepts a plain :class:`ConjunctiveQuery` or a factorized
    :class:`QueryProduct` (whose lazy exponents are carried onto the
    steps).  ``cache`` overrides the process-wide profile cache —
    pass a fresh :class:`PlanCache` for isolated measurements.
    """
    _preregister_counters()
    obs_metrics.add("plan.calls")
    plan_cache = cache if cache is not None else _DEFAULT_PLAN_CACHE
    hits_before, misses_before = plan_cache.hits, plan_cache.misses

    with span("plan.analyze") as analyze_span:
        analyzed: list[tuple[ConjunctiveQuery, int, ComponentProfile]] = []
        for component, exponent in _component_terms(query):
            profile, _ = plan_cache.profile(component)
            analyzed.append((component, exponent, profile))
        analyze_span.set(components=len(analyzed))

    with span("plan.select") as select_span:
        steps = []
        for component, exponent, profile in analyzed:
            engine, est_cost = select_engine(component, profile, structure)
            obs_metrics.add("plan.components")
            obs_metrics.add(f"plan.selected.{engine}")
            steps.append(
                PlanStep(
                    component=component,
                    engine=engine,
                    est_cost=est_cost,
                    profile=profile,
                    exponent=exponent,
                )
            )
        select_span.set(
            engines=",".join(sorted({step.engine for step in steps}))
        )

    return Plan(
        steps=tuple(steps),
        cache_hits=plan_cache.hits - hits_before,
        cache_misses=plan_cache.misses - misses_before,
    )
