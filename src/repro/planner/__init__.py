"""``repro.planner`` — the cost-based query planner behind ``engine="auto"``.

Layered between the query algebra and the counting engines: a
:func:`plan` call decomposes a query (or factorized
:class:`~repro.queries.product.QueryProduct`) into connected components,
profiles each one structurally (GYO acyclicity, a greedy treewidth
bound, sizes — memoized in a canonicalization-keyed :class:`PlanCache`),
scores the three engines with a calibrated cost model, and returns an
executable :class:`Plan`.  ``engine="auto"`` in
:mod:`repro.homomorphism.engine` / ``batch`` runs these plans;
``bagcq explain`` pretty-prints them.

See ``docs/ARCHITECTURE.md`` for where the planner sits in the stack and
``docs/OBSERVABILITY.md`` for the ``plan.*`` metric glossary.
"""

from repro.planner.analyze import (
    ComponentProfile,
    PlanCache,
    analyze_component,
    greedy_treewidth_bound,
)
from repro.planner.cost import (
    CostConstants,
    eligible_engines,
    estimate_cost,
    estimate_visits,
    fit_constants,
    get_constants,
    select_engine,
    set_constants,
    use_constants,
)
from repro.planner.plan import (
    Plan,
    PlanStep,
    default_plan_cache,
    plan,
    select_for,
)

__all__ = [
    "ComponentProfile",
    "CostConstants",
    "Plan",
    "PlanCache",
    "PlanStep",
    "analyze_component",
    "default_plan_cache",
    "eligible_engines",
    "estimate_cost",
    "estimate_visits",
    "fit_constants",
    "get_constants",
    "greedy_treewidth_bound",
    "plan",
    "select_engine",
    "select_for",
    "set_constants",
    "use_constants",
]
